"""MiniBERT specifics: segments, masking, and GLUE-model plumbing."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.data import make_task
from repro.zoo import MiniBERT


@pytest.fixture(scope="module")
def bert():
    return MiniBERT(vocab_size=32, seq_len=10, dim=16, num_heads=2,
                    num_layers=1, ffn_dim=32, num_labels=2, sep_id=2, seed=0)


class TestSegments:
    def test_segment_embedding_changes_output(self, bert):
        """Moving the [SEP] position must change the representation."""
        rng = np.random.default_rng(0)
        base = rng.integers(4, 32, size=(1, 10))
        a = base.copy()
        b = base.copy()
        a[0, 4] = 2   # SEP early
        b[0, 7] = 2   # SEP late
        mask = np.ones((1, 10), dtype=np.float32)
        with no_grad():
            out_a = bert(a, mask).data
            out_b = bert(b, mask).data
        assert not np.allclose(out_a, out_b)

    def test_padding_does_not_change_logits(self, bert):
        """Tokens behind the mask must not affect the CLS prediction."""
        rng = np.random.default_rng(1)
        ids = rng.integers(4, 32, size=(1, 10))
        ids[0, 6:] = 0
        mask = np.zeros((1, 10), dtype=np.float32)
        mask[0, :6] = 1.0
        altered = ids.copy()
        altered[0, 8] = 17  # change a masked position
        with no_grad():
            out1 = bert(ids, mask).data
            out2 = bert(altered, mask).data
        np.testing.assert_allclose(out1, out2, atol=2e-4)

    def test_no_mask_still_works(self, bert):
        ids = np.random.default_rng(2).integers(4, 32, size=(3, 10))
        with no_grad():
            out = bert(ids).data
        assert out.shape == (3, 2)


class TestGlueModelCompat:
    @pytest.mark.parametrize("task_name", ["cola", "sst2", "mrpc", "mnli"])
    def test_bert_accepts_task_batches(self, task_name):
        task = make_task(task_name, seq_len=16)
        model = MiniBERT(vocab_size=task.vocab.size, seq_len=task.seq_len,
                         dim=16, num_heads=2, num_layers=1, ffn_dim=32,
                         num_labels=task.num_labels, seed=1)
        split = task.sample(6, seed=0)
        with no_grad():
            out = model(split.ids, split.mask).data
        assert out.shape == (6, task.num_labels)
        assert np.isfinite(out).all()

    def test_quantizable_layer_census(self):
        """Q/K/V/out per layer + 2 FFN + pooler + classifier are hooked."""
        from repro.quant.ptq import quantized_layers
        model = MiniBERT(vocab_size=16, seq_len=8, dim=16, num_heads=2,
                         num_layers=2, ffn_dim=32)
        layers = quantized_layers(model)
        assert len(layers) == 2 * (4 + 2) + 2
