"""Differential suite: uniform ``layer_formats`` maps vs the uniform path.

The mixed-precision plumbing (:mod:`repro.quant.mixed` + the
``layer_formats`` field of :class:`~repro.quant.ptq.PTQConfig`) must be a
strict generalisation of the uniform PTQ path: a map that assigns the
*same* format to every layer has to produce byte-identical calibration
scales and byte-identical outputs — across fakequant AND engine modes,
and under both kernel backends.  Anything less means the per-layer
branch silently perturbs the paper's uniform numbers.

A truly mixed map is then held to a per-layer equivalence: each layer's
quantizers and engine must match what a uniform run of *that layer's
format* produces for that layer.
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.kernels.dispatch import use_backend
from repro.nn import (
    Conv2d, Flatten, GlobalAvgPool2d, Linear, MaxPool2d, ReLU, Sequential,
)
from repro.quant import PTQConfig, quantize_model, quantized_layers

MODES = ["fakequant", "engine"]
BACKENDS = ["lut", "reference"]
FORMATS = ["MERSIT(8,2)", "FP(8,4)", "Posit(8,1)"]


def tiny_mlp(seed=20):
    rng = np.random.default_rng(seed)
    return Sequential(
        Linear(16, 24, rng=rng), ReLU(),
        Linear(24, 16, rng=rng), ReLU(),
        Linear(16, 6, rng=rng))


def tiny_cnn(seed=10):
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(3, 4, 3, padding=1, rng=rng), ReLU(), MaxPool2d(2),
        Conv2d(4, 8, 3, padding=1, rng=rng), ReLU(),
        GlobalAvgPool2d(), Flatten(),
        Linear(8, 5, rng=rng))


MODELS = {
    "mlp": (tiny_mlp, (16,)),
    "cnn": (tiny_cnn, (3, 8, 8)),
}


def calib(shape, n=3, bs=4, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(bs, *shape)).astype(np.float32)
            for _ in range(n)]


def quantize(model, config, shape):
    quantize_model(model, config, calib(shape),
                   forward=lambda m, b: m(Tensor(b)))
    return model


def outputs(model, shape, seed=99):
    x = np.random.default_rng(seed).normal(size=(5, *shape)).astype(np.float32)
    return model(Tensor(x)).data


def scales_of(model):
    return {name: (layer.weight_quant.scale.tobytes(),
                   np.asarray(layer.input_quant.scale).tobytes())
            for name, layer in quantized_layers(model)}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("model_name", sorted(MODELS))
def test_uniform_map_is_byte_identical(model_name, mode, backend):
    """Same-format-everywhere map == plain uniform config, bit for bit."""
    build, shape = MODELS[model_name]
    fmt = "MERSIT(8,2)"
    with use_backend(backend):
        plain = quantize(build(), PTQConfig(fmt, mode=mode), shape)
        layer_names = [n for n, _ in quantized_layers(plain)]
        mapped = quantize(
            build(),
            PTQConfig(fmt, mode=mode,
                      layer_formats={n: fmt for n in layer_names}),
            shape)
        assert scales_of(plain) == scales_of(mapped)
        a, b = outputs(plain, shape), outputs(mapped, shape)
        assert a.tobytes() == b.tobytes()


@pytest.mark.parametrize("mode", MODES)
def test_partial_uniform_map_is_byte_identical(mode):
    """A map naming only *some* layers (all at the default) is a no-op."""
    build, shape = MODELS["mlp"]
    fmt = "FP(8,4)"
    plain = quantize(build(), PTQConfig(fmt, mode=mode), shape)
    first = next(n for n, _ in quantized_layers(plain))
    mapped = quantize(build(), PTQConfig(fmt, mode=mode,
                                         layer_formats={first: fmt}), shape)
    assert scales_of(plain) == scales_of(mapped)
    assert outputs(plain, shape).tobytes() == outputs(mapped, shape).tobytes()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("mode", MODES)
def test_mixed_map_matches_per_layer_uniform(mode, backend):
    """Each layer of a mixed model equals the uniform run of its format.

    Calibration scales come from weight/activation observation, which is
    per-layer local in observe-then-freeze PTQ — so layer ``l`` under a
    mixed map must carry exactly the quantizers (scale bytes, formats,
    engine formats) that a uniform run of ``formats[l]`` gives it.
    """
    build, shape = MODELS["mlp"]
    with use_backend(backend):
        names = [n for n, _ in quantized_layers(build())]
        assignment = {n: FORMATS[i % len(FORMATS)]
                      for i, n in enumerate(names)}
        mixed = quantize(
            build(), PTQConfig(FORMATS[0], mode=mode,
                               layer_formats=assignment), shape)
        uniform = {f: quantize(build(), PTQConfig(f, mode=mode), shape)
                   for f in FORMATS}
        for name, layer in quantized_layers(mixed):
            fmt = assignment[name]
            ref = dict(quantized_layers(uniform[fmt]))[name]
            assert layer.weight_quant.fmt.name == fmt
            assert layer.input_quant.fmt.name == fmt
            assert (layer.weight_quant.scale.tobytes()
                    == ref.weight_quant.scale.tobytes())
            assert (np.asarray(layer.input_quant.scale).tobytes()
                    == np.asarray(ref.input_quant.scale).tobytes())
            if mode == "engine":
                assert layer.engine_exec.wfmt.name == fmt
                assert layer.engine_exec.afmt.name == fmt


@pytest.mark.parametrize("mode", MODES)
def test_mixed_output_differs_from_uniform(mode):
    """Sanity: a genuinely mixed map is not the uniform path in disguise."""
    build, shape = MODELS["mlp"]
    names = [n for n, _ in quantized_layers(build())]
    mixed = quantize(
        build(), PTQConfig("MERSIT(8,2)", mode=mode,
                           layer_formats={names[-1]: "FP(8,2)"}), shape)
    plain = quantize(build(), PTQConfig("MERSIT(8,2)", mode=mode), shape)
    assert (outputs(mixed, shape).tobytes()
            != outputs(plain, shape).tobytes())


def test_unknown_layer_name_rejected_before_attach():
    """A bad map fails loudly and leaves the model untouched."""
    build, shape = MODELS["mlp"]
    model = build()
    with pytest.raises(ValueError, match="unknown"):
        quantize(model, PTQConfig("INT8", layer_formats={"nope": "INT8"}),
                 shape)
    assert all(layer.weight_quant is None
               for _, layer in quantized_layers(model))


def test_skipped_layer_in_map_rejected():
    """Naming a skip()-ed layer in the map is an error, not a silent drop."""
    build, shape = MODELS["mlp"]
    names = [n for n, _ in quantized_layers(build())]
    cfg = PTQConfig("INT8", layer_formats={names[0]: "INT8"},
                    skip=lambda name, m: name == names[0])
    with pytest.raises(ValueError, match="unknown/skipped"):
        quantize(build(), cfg, shape)


def test_determinism_across_runs():
    """Two identical mixed runs produce byte-identical outputs."""
    build, shape = MODELS["cnn"]
    names = [n for n, _ in quantized_layers(build())]
    cfg = lambda: PTQConfig("MERSIT(8,2)", mode="engine",
                            layer_formats={names[-1]: "FP(8,4)"})
    a = quantize(build(), cfg(), shape)
    b = quantize(build(), cfg(), shape)
    assert outputs(a, shape).tobytes() == outputs(b, shape).tobytes()
