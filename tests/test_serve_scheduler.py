"""Unit tests for the batching scheduler: coalescing, backpressure,
deadlines, retries — against a stub executor (no models involved)."""

import threading
import time

import pytest

from repro.resilience import NumericsError
from repro.serve import (
    BatchPolicy, BatchingScheduler, DeadlineExceededError, QueueFullError,
    ServeMetrics, ServiceClosedError, WorkerCrashError,
)

pytestmark = pytest.mark.serve


class Recorder:
    """Stub executor recording every batch it ran."""

    def __init__(self, delay_s=0.0, fail_times=0, exc=RuntimeError("boom")):
        self.batches = []
        self.delay_s = delay_s
        self.fail_times = fail_times
        self.exc = exc
        self.lock = threading.Lock()
        self.gate = threading.Event()
        self.gate.set()

    def __call__(self, key, inputs_list):
        self.gate.wait(10)
        if self.delay_s:
            time.sleep(self.delay_s)
        with self.lock:
            self.batches.append((key, list(inputs_list)))
            if self.fail_times > 0:
                self.fail_times -= 1
                raise self.exc
        return [(key, x) for x in inputs_list]


def make(executor, **policy_kw):
    policy = BatchPolicy(**{"max_batch": 4, "max_wait_ms": 20.0,
                            "queue_depth": 8, "workers": 1, **policy_kw})
    return BatchingScheduler(executor, policy, ServeMetrics())


def test_requests_coalesce_up_to_max_batch():
    ex = Recorder()
    ex.gate.clear()  # hold the worker so submissions pile up
    sched = make(ex, max_batch=3, workers=1)
    futs = [sched.submit("m", i) for i in range(6)]
    ex.gate.set()
    results = [f.result(10) for f in futs]
    assert results == [("m", i) for i in range(6)]
    sched.close()
    assert all(len(b) <= 3 for _k, b in ex.batches)
    assert max(len(b) for _k, b in ex.batches) == 3  # it did coalesce


def test_different_keys_never_share_a_batch():
    ex = Recorder()
    ex.gate.clear()
    sched = make(ex, max_batch=8)
    futs = [sched.submit(f"key{i % 2}", i) for i in range(8)]
    ex.gate.set()
    for f in futs:
        f.result(10)
    sched.close()
    for key, batch in ex.batches:
        assert all(x % 2 == int(key[-1]) for x in batch)


def test_partial_batch_dispatches_after_max_wait():
    ex = Recorder()
    sched = make(ex, max_batch=32, max_wait_ms=5.0)
    t0 = time.perf_counter()
    out = sched.submit("m", 1).result(10)
    elapsed = time.perf_counter() - t0
    sched.close()
    assert out == ("m", 1)
    assert elapsed < 5.0  # never waits the full queue out for a lone request


def test_queue_full_rejects_with_structured_error():
    ex = Recorder()
    ex.gate.clear()  # nothing drains
    sched = make(ex, queue_depth=3, workers=1)
    futs = [sched.submit("m", i) for i in range(3)]
    with pytest.raises(QueueFullError) as ei:
        for i in range(10):  # workers may have picked up some; keep pushing
            futs.append(sched.submit("m", 100 + i))
    entry = ei.value.to_entry()
    assert entry["error"]["kind"] == "queue-full"
    assert entry["error"]["code"] == 503
    ex.gate.set()
    sched.close()
    assert sched.metrics.snapshot()["rejected"] >= 1


def test_deadline_expires_before_execution():
    ex = Recorder()
    ex.gate.clear()
    sched = make(ex, workers=1)
    # park the worker on a decoy batch, then submit with a tiny deadline
    decoy = sched.submit("decoy", 0)
    fut = sched.submit("m", 1, deadline_ms=1.0)
    time.sleep(0.05)
    ex.gate.set()
    decoy.result(10)
    with pytest.raises(DeadlineExceededError) as ei:
        fut.result(10)
    assert ei.value.to_entry()["error"]["code"] == 504
    sched.close()
    assert sched.metrics.snapshot()["expired"] == 1


def test_transient_failure_is_retried_then_succeeds():
    ex = Recorder(fail_times=1)
    sched = make(ex, retries=1)
    assert sched.submit("m", 7).result(10) == ("m", 7)
    sched.close()
    assert sched.metrics.snapshot()["retried_batches"] == 1


def test_retry_budget_exhaustion_fails_whole_batch():
    ex = Recorder(fail_times=10)
    sched = make(ex, retries=1, workers=1)
    ex.gate.clear()
    futs = [sched.submit("m", i) for i in range(3)]
    ex.gate.set()
    for f in futs:
        with pytest.raises(WorkerCrashError) as ei:
            f.result(10)
        assert ei.value.to_entry()["error"]["kind"] == "worker-crash"
    sched.close()
    assert sched.metrics.snapshot()["failed"] == 3


def test_numerics_error_is_not_retried():
    ex = Recorder(fail_times=10, exc=NumericsError("NaN in scale"))
    sched = make(ex, retries=5)
    with pytest.raises(WorkerCrashError):
        sched.submit("m", 1).result(10)
    sched.close()
    assert sched.metrics.snapshot()["retried_batches"] == 0
    assert len(ex.batches) == 1  # deterministic failure ran exactly once


def test_close_drains_queued_requests():
    ex = Recorder(delay_s=0.01)
    sched = make(ex, workers=1)
    futs = [sched.submit("m", i) for i in range(5)]
    sched.close(drain=True)
    assert [f.result(0.1) for f in futs] == [("m", i) for i in range(5)]


def test_close_without_drain_fails_pending():
    ex = Recorder()
    ex.gate.clear()
    # max_batch=1: the worker holds request 0 in execution (blocked on the
    # gate) while 1..3 stay queued, so close(drain=False) must fail them
    sched = make(ex, workers=1, max_batch=1)
    futs = [sched.submit("m", i) for i in range(4)]
    time.sleep(0.05)  # let the worker pick up request 0
    threading.Timer(0.05, ex.gate.set).start()
    sched.close(drain=False)
    outcomes = []
    for f in futs:
        try:
            f.result(5)
            outcomes.append("ok")
        except ServiceClosedError:
            outcomes.append("closed")
    assert "closed" in outcomes  # at least the queued tail was failed fast


def test_submit_after_close_raises():
    sched = make(Recorder())
    sched.close()
    with pytest.raises(ServiceClosedError):
        sched.submit("m", 1)


def test_policy_validation():
    with pytest.raises(ValueError):
        BatchPolicy(max_batch=0)
    with pytest.raises(ValueError):
        BatchPolicy(max_wait_ms=-1)
    with pytest.raises(ValueError):
        BatchPolicy(retries=-1)


# ---------------------------------------------------------------------------
# shutdown-race pins (audited for the gateway's graceful-drain path):
# submit() checks the closed flag and enqueues under one _cond acquisition,
# and close() flips the flag under the same lock — so a request can never
# slip past a concurrent close into a queue nobody will ever drain.  These
# hammers pin that invariant: every submitted future resolves promptly as
# either a real result or ServiceClosedError, never a silent drop.
# ---------------------------------------------------------------------------

def _hammer_close(drain: bool, seed: int):
    ex = Recorder(delay_s=0.001)
    sched = make(ex, workers=2, queue_depth=64)
    futs = []
    futs_lock = threading.Lock()
    start = threading.Barrier(5)

    def submitter(tid):
        start.wait()
        for i in range(50):
            try:
                f = sched.submit("m", (tid, i))
            except (ServiceClosedError, QueueFullError):
                continue
            with futs_lock:
                futs.append(f)

    threads = [threading.Thread(target=submitter, args=(t,))
               for t in range(4)]
    for t in threads:
        t.start()
    start.wait()
    time.sleep(0.002 * (seed % 5))   # vary where close lands in the storm
    sched.close(drain=drain)
    for t in threads:
        t.join(10)
        assert not t.is_alive()
    outcomes = {"ok": 0, "closed": 0}
    for f in futs:
        try:
            f.result(5)   # a dropped future would hang right here
            outcomes["ok"] += 1
        except ServiceClosedError:
            outcomes["closed"] += 1
    return outcomes


def test_submit_racing_drain_close_never_drops_a_future():
    for seed in range(5):
        outcomes = _hammer_close(drain=True, seed=seed)
        # with drain=True every accepted request must actually run
        assert outcomes["closed"] == 0, \
            f"seed {seed}: drain-close failed accepted requests {outcomes}"


def test_submit_racing_abort_close_never_drops_a_future():
    for seed in range(5):
        outcomes = _hammer_close(drain=False, seed=seed)
        assert outcomes["ok"] + outcomes["closed"] > 0, seed
