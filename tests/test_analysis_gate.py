"""Tier-1 static-analysis gate: the repo itself must pass its own passes.

The fast path verifies a representative netlist subset (the three Fig. 7
MACs, their decoders, the MERSIT encoder) and lints all of ``src/repro``;
the exhaustive per-variant sweep is marked ``slow``.  Also pins the
paper-relevant logic-depth ordering: grouped MERSIT decoding is shallower
than the Posit leading-run detector (paper section 4.1).
"""

import json

import pytest

from repro.analysis import (
    analyze_lint,
    analyze_netlists,
    depth_of,
    depth_report,
    verify_circuit,
)
from repro.analysis.run import default_lint_root
from repro.cli import main
from repro.hardware.variants import (
    PAPER_MACS,
    build_variant,
    registered_variants,
)

#: tier-1 representative subset: everything the paper quotes numbers for
TIER1_VARIANTS = sorted(
    [f"mac:{n}" for n in PAPER_MACS]
    + ["decoder:FP(8,4)", "decoder:Posit(8,1)", "decoder:MERSIT(8,2)",
       "encoder:MERSIT(8,2)"])


class TestRepoNetlistsClean:
    @pytest.mark.parametrize("name", TIER1_VARIANTS)
    def test_tier1_variant_verifies_clean(self, name):
        diags = verify_circuit(build_variant(name), name)
        assert diags == [], "\n".join(d.render() for d in diags)

    def test_tier1_subset_report_ok(self):
        report = analyze_netlists(TIER1_VARIANTS)
        assert report.ok
        assert set(report.summary["depth"]) == set(TIER1_VARIANTS)

    @pytest.mark.slow
    @pytest.mark.parametrize("name", registered_variants())
    def test_every_registered_variant_verifies_clean(self, name):
        diags = verify_circuit(build_variant(name), name)
        assert diags == [], "\n".join(d.render() for d in diags)

    def test_no_dead_logic_in_reported_macs(self):
        # Table 3 / Fig. 7 gate counts must cover live logic only
        for name in PAPER_MACS:
            c = build_variant(f"mac:{name}")
            assert c.dead_gates() == []
            assert c.prune_dead() == 0


class TestRepoLintClean:
    def test_src_repro_is_lint_clean(self):
        report = analyze_lint()
        assert report.ok, "\n".join(d.render() for d in report.errors)
        # the default target really is the package tree, non-trivially big
        assert report.summary["files"] > 50
        assert default_lint_root().name == "repro"


class TestLogicDepthRegression:
    """Pins the levelized depth of the paper's head-to-head decoders."""

    def test_mersit_decoder_shallower_than_posit(self):
        mersit = depth_of(build_variant("decoder:MERSIT(8,2)"))
        posit = depth_of(build_variant("decoder:Posit(8,1)"))
        assert mersit.logic_depth < posit.logic_depth

    def test_pinned_decoder_depths(self):
        # regression pin: update deliberately, with the netlist change
        assert depth_of(build_variant("decoder:MERSIT(8,2)")).logic_depth == 23
        assert depth_of(build_variant("decoder:Posit(8,1)")).logic_depth == 42

    def test_depth_report_rows_consistent(self):
        rows = depth_report(["decoder:MERSIT(8,2)", "mac:MERSIT(8,2)"])
        by_name = {r.variant: r for r in rows}
        dec, mac = by_name["decoder:MERSIT(8,2)"], by_name["mac:MERSIT(8,2)"]
        assert mac.logic_depth > dec.logic_depth  # MAC embeds the decoder
        assert dec.logic_depth == max(dec.depth_by_output.values())
        assert dec.gate_count > 0 and dec.critical_path_ns > 0

    def test_mac_cost_row_carries_depth(self):
        import numpy as np
        from repro.formats import get_format
        from repro.hardware.mac import MacUnit
        from repro.hardware.report import mac_cost
        rng = np.random.default_rng(7)
        codes = rng.integers(0, 256, 64)
        row = mac_cost(MacUnit(get_format("MERSIT(8,2)")), codes, codes)
        assert row.logic_depth == build_variant("mac:MERSIT(8,2)").logic_depth()


class TestAnalyzeCli:
    def test_netlist_subset_human(self, capsys):
        assert main(["analyze", "netlist", "decoder:MERSIT(8,2)"]) == 0
        out = capsys.readouterr().out
        assert "decoder:MERSIT(8,2)" in out and "netlist: clean" in out

    def test_netlist_json_shape(self, capsys):
        assert main(["analyze", "netlist", "--json",
                     "decoder:MERSIT(8,2)", "decoder:Posit(8,1)"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["kind"] == "netlist"
        depth = payload["summary"]["depth"]
        assert depth["decoder:MERSIT(8,2)"]["logic_depth"] == 23

    def test_unknown_variant_raises(self):
        with pytest.raises(KeyError, match="unknown netlist variant"):
            main(["analyze", "netlist", "decoder:NoSuchFormat"])

    def test_lint_dirty_file_exits_nonzero(self, capsys, tmp_path):
        bad = tmp_path / "quant_mod.py"
        bad.write_text("import numpy as np\n"
                       "r = np.random.default_rng()\n")
        assert main(["analyze", "lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "unseeded-rng" in out and "1 error(s)" in out

    def test_lint_json_on_clean_file(self, capsys, tmp_path):
        good = tmp_path / "ok.py"
        good.write_text("x = 1\n")
        assert main(["analyze", "lint", "--json", str(good)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"diagnostics": [], "kind": "lint", "ok": True,
                           "summary": {"files": 1, "targets": [str(good)]}}
