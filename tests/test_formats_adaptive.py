"""AdaptivFloat and BFP: the related formats of paper §2.1."""

import numpy as np
import pytest

from repro.formats import FP8_E4
from repro.formats.adaptivfloat import AdaptivFloatFormat, fit_bias
from repro.quant import FakeQuantizer, relative_rmse
from repro.quant.bfp import bfp_quantize


class TestAdaptivFloat:
    def test_no_specials(self):
        fmt = AdaptivFloatFormat(8, 4)
        classes = {d.value_class for d in fmt.decoded}
        assert classes == {"finite", "zero"}

    def test_zero_code(self):
        fmt = AdaptivFloatFormat(8, 4)
        assert fmt.decode(0).value == 0.0
        assert fmt.decode(0x80).value_class == "zero"

    def test_no_subnormals(self):
        """Smallest nonzero magnitude has a full significand."""
        fmt = AdaptivFloatFormat(8, 4)
        smallest = fmt.positive_finite_values[0]
        d = fmt.decode(fmt.encode(float(smallest)))
        assert d.fraction_bits == fmt.fbits

    def test_bias_shifts_range(self):
        lo = AdaptivFloatFormat(8, 4, bias=10)
        hi = AdaptivFloatFormat(8, 4, bias=0)
        assert lo.max_value < hi.max_value
        assert lo.max_value == pytest.approx(hi.max_value / 2 ** 10)

    def test_fit_bias_covers_tensor_max(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=500) * 0.03
        fmt = fit_bias(x, 8, 4)
        amax = np.abs(x).max()
        assert fmt.max_value >= amax
        assert fmt.max_value < amax * 4  # and not wastefully larger

    def test_fit_bias_zero_tensor(self):
        fmt = fit_bias(np.zeros(8))
        assert fmt.bias == 7  # the static default

    def test_bad_ebits(self):
        with pytest.raises(ValueError):
            AdaptivFloatFormat(8, 0)

    def test_paper_claim_aligns_with_fp8(self):
        """Paper §2.1: with max scaling, AdaptivFloat ~ FP8 in error."""
        rng = np.random.default_rng(1)
        w = rng.normal(size=3000) * 0.08
        af = fit_bias(w, 8, 4)
        err_af = relative_rmse(w, af.quantize(w))
        err_fp8 = relative_rmse(w, FakeQuantizer(FP8_E4).calibrate(w)(w))
        assert err_af == pytest.approx(err_fp8, rel=0.35)


class TestBFP:
    def test_exact_on_block_scaled_integers(self):
        step = 0.25
        x = np.arange(-8, 8) * step
        q = bfp_quantize(x, mantissa_bits=8, block_size=16)
        np.testing.assert_allclose(q, x)

    def test_zero_block(self):
        q = bfp_quantize(np.zeros(32), mantissa_bits=4, block_size=8)
        np.testing.assert_array_equal(q, 0.0)

    def test_error_bounded_by_block_step(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(4, 64))
        m = 6
        q = bfp_quantize(x, mantissa_bits=m, block_size=16, axis=-1)
        levels = (1 << (m - 1)) - 1
        for r in range(4):
            for start in range(0, 64, 16):
                blk = x[r, start:start + 16]
                err = np.abs(blk - q[r, start:start + 16])
                amax = np.abs(blk).max()
                step = 2.0 ** np.ceil(np.log2(amax / levels))
                assert err.max() <= step / 2 + 1e-12

    def test_partial_trailing_block(self):
        x = np.linspace(-1, 1, 20)  # 16 + 4
        q = bfp_quantize(x, mantissa_bits=8, block_size=16)
        assert q.shape == x.shape

    def test_axis_handling(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(8, 5))
        q0 = bfp_quantize(x, block_size=4, axis=0)
        q1 = bfp_quantize(x.T, block_size=4, axis=1).T
        np.testing.assert_allclose(q0, q1)

    def test_outlier_poisons_its_block_only(self):
        """The known BFP failure mode: an outlier crushes only its block."""
        x = np.ones(32) * 0.01
        x[3] = 100.0
        q = bfp_quantize(x, mantissa_bits=4, block_size=8)
        assert np.all(q[:8][np.arange(8) != 3] == 0.0)  # block 0 wiped out
        np.testing.assert_allclose(q[8:], 0.0100, atol=2e-3)  # others fine

    def test_validation(self):
        with pytest.raises(ValueError):
            bfp_quantize(np.ones(4), mantissa_bits=1)
        with pytest.raises(ValueError):
            bfp_quantize(np.ones(4), block_size=0)

    def test_int8_equivalence_at_full_width(self):
        """BFP with 8-bit mantissas and per-tensor blocks ~ INT8+scale."""
        rng = np.random.default_rng(4)
        x = rng.normal(size=64)
        q = bfp_quantize(x, mantissa_bits=8, block_size=64)
        levels = 127
        amax = np.abs(x).max()
        step = 2.0 ** np.ceil(np.log2(amax / levels))
        np.testing.assert_allclose(q, np.clip(np.rint(x / step), -127, 127) * step)
