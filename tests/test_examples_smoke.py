"""Smoke tests: the lightweight examples run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(REPO / "examples" / name), *args],
        capture_output=True, text=True, timeout=300, cwd=REPO)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestLightExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "MERSIT(8,2)" in out
        assert "relative RMSE" in out

    def test_format_explorer_overview(self):
        out = run_example("format_explorer.py", "MERSIT(8,2)")
        assert "2^-9 ~ 2^8" in out

    def test_format_explorer_decode(self):
        out = run_example("format_explorer.py", "Posit(8,1)", "0x40")
        assert "1.0" in out

    def test_format_explorer_encode(self):
        out = run_example("format_explorer.py", "FP(8,4)", "0.5")
        assert "0x" in out

    def test_format_explorer_no_args_lists_formats(self):
        out = run_example("format_explorer.py")
        assert "INT8" in out


class TestCliModule:
    def test_cli_formats_via_subprocess(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "formats"],
            capture_output=True, text=True, timeout=120, cwd=REPO)
        assert proc.returncode == 0
        assert "MERSIT(8,2)" in proc.stdout

    def test_experiments_runner_module(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.runner", "fig2"],
            capture_output=True, text=True, timeout=120, cwd=REPO)
        assert proc.returncode == 0
        assert "MATCHES PAPER" in proc.stdout
