"""Tensor API surface: construction, dtype policy, graph mechanics."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, is_grad_enabled, no_grad


class TestConstruction:
    def test_int_input_promoted_to_float32(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float32

    def test_float64_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_as_tensor_passthrough(self):
        t = Tensor(np.ones(2))
        assert Tensor.as_tensor(t) is t
        assert isinstance(Tensor.as_tensor([1.0]), Tensor)

    def test_shape_size_ndim(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.size == 24
        assert t.ndim == 3
        assert len(t) == 2

    def test_item_scalar(self):
        assert Tensor(np.array([3.5])).item() == 3.5

    def test_numpy_returns_backing_array(self):
        arr = np.ones(3, dtype=np.float32)
        assert Tensor(arr).numpy() is arr


class TestGradMode:
    def test_no_grad_nesting(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_no_grad_is_thread_local(self):
        """Regression: a process-global flag let two serving workers
        interleave ``no_grad`` enter/exit (A enters, B enters seeing
        False, A exits, B exits restoring False) and disable gradients
        for every other thread — including a later training loop."""
        import threading

        barrier = threading.Barrier(2)
        seen = []

        def worker():
            with no_grad():
                barrier.wait()   # both threads inside no_grad at once
                barrier.wait()   # hold until the other has entered too
            seen.append(is_grad_enabled())

        threads = [threading.Thread(target=worker) for _ in range(2)]
        with no_grad():
            pass  # main thread's own toggling must not leak either
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == [True, True]   # each thread restored its own flag
        assert is_grad_enabled()      # and the main thread never saw it
        # a thread spawned fresh starts with gradients enabled
        fresh = []
        t = threading.Thread(target=lambda: fresh.append(is_grad_enabled()))
        t.start()
        t.join()
        assert fresh == [True]

    def test_constants_produce_no_tape(self):
        a = Tensor(np.ones(3))
        b = Tensor(np.ones(3))
        out = a * b + a
        assert not out.requires_grad
        assert out._parents == ()


class TestOperatorCoercion:
    def test_scalar_left_ops(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = 3.0 * x + 1.0
        y.backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [3.0])

    def test_rsub_rdiv(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = (1.0 - x) + (4.0 / x)
        y.backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [-1.0 - 4.0 / 4.0])

    def test_ndarray_operand(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * np.array([1.0, 2.0, 3.0])).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [1, 2, 3])

    def test_matmul_vector_result(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        v = np.array([1.0, 2.0, 3.0])
        out = (x @ v).sum()
        out.backward()
        np.testing.assert_allclose(x.grad, np.tile(v, (2, 1)))

    def test_pow_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(TypeError):
            x ** np.ones(3)


class TestGradAccumulationSemantics:
    def test_two_backward_calls_accumulate(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x * 5
        y.backward(np.ones(1))
        y2 = x * 5
        y2.backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [10.0])

    def test_zero_grad_resets(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2).backward(np.ones(1))
        x.zero_grad()
        assert x.grad is None

    def test_long_chain_depth(self):
        """Iterative topo sort must handle deep graphs (no recursion limit)."""
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [1.0])

    def test_branching_graph_visits_once(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        shared = x * x           # 4
        out = shared * 3 + shared * 5   # 8 * x^2 -> d/dx = 16x = 32
        out.backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [32.0])


class TestFunctionalEdgeCases:
    def test_cross_entropy_requires_2d(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros(4)), np.array([0]))

    def test_softmax_invariant_to_shift(self):
        x = np.array([[1.0, 2.0, 3.0]])
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-6)

    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(5, 7)) * 10)
        s = F.softmax(x, axis=-1).data
        np.testing.assert_allclose(s.sum(axis=-1), 1.0, atol=1e-6)

    def test_gelu_matches_erf_form(self):
        from scipy.special import erf
        x = np.linspace(-3, 3, 50)
        got = F.gelu(Tensor(x)).data
        want = x * 0.5 * (1 + erf(x / np.sqrt(2)))
        np.testing.assert_allclose(got, want, atol=5e-3)

    def test_hardswish_known_points(self):
        x = Tensor(np.array([-4.0, -3.0, 0.0, 3.0, 5.0]))
        np.testing.assert_allclose(F.hardswish(x).data, [0, 0, 0, 3, 5], atol=1e-7)

    def test_relu6_clamps(self):
        x = Tensor(np.array([-1.0, 3.0, 9.0]))
        np.testing.assert_allclose(F.relu6(x).data, [0, 3, 6])

    def test_cross_entropy_of_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6


class TestDataVersioning:
    """The data-version counter that backs quantized-weight caching."""

    def test_fresh_tensor_has_stable_version(self):
        t = Tensor(np.ones(3))
        v = t.version
        assert t.version == v  # reading does not bump

    def test_rebinding_data_bumps(self):
        t = Tensor(np.ones(3))
        v = t.version
        t.data = np.zeros(3)
        assert t.version == v + 1

    def test_augmented_assignment_bumps(self):
        t = Tensor(np.ones(3))
        v = t.version
        t.data += 1.0  # read + rebind through the property setter
        assert t.version > v

    def test_inplace_array_write_does_not_bump(self):
        # documented contract: writes through the array bypass the setter
        t = Tensor(np.ones(3))
        v = t.version
        t.data[:] = 0.0
        assert t.version == v
        t.bump_version()
        assert t.version == v + 1

    def test_setter_keeps_dtype_policy(self):
        t = Tensor(np.ones(3, dtype=np.float32))
        t.data = [1, 2, 3]  # ints promoted like the constructor promotes
        assert t.dtype == np.float32

    def test_optimizer_step_invalidates(self):
        from repro.nn import Linear
        from repro.nn.optim import SGD
        layer = Linear(4, 2)
        v = layer.weight.version
        opt = SGD(layer.parameters(), lr=0.1)
        layer.weight.grad = np.ones_like(layer.weight.data)
        if layer.bias is not None:
            layer.bias.grad = np.zeros_like(layer.bias.data)
        opt.step()
        assert layer.weight.version > v


class TestBatchInvariantMatmul:
    """The serving-mode guarantee: 2-D matmuls are row-stable under the
    batch-invariant context, so batched rows equal single-row GEMMs."""

    def test_rows_match_single_sample_matmul(self):
        from repro.autograd import batch_invariant_matmul
        rng = np.random.default_rng(0)
        a = rng.normal(size=(64, 96)).astype(np.float32)
        b = rng.normal(size=(96, 48)).astype(np.float32)
        with batch_invariant_matmul():
            full = (Tensor(a) @ Tensor(b)).data
            for i in (0, 17, 63):
                row = (Tensor(a[i:i + 1]) @ Tensor(b)).data
                np.testing.assert_array_equal(full[i:i + 1], row)

    def test_mode_is_off_by_default_and_restores(self):
        from repro.autograd import batch_invariant_enabled, batch_invariant_matmul
        assert not batch_invariant_enabled()
        with batch_invariant_matmul():
            assert batch_invariant_enabled()
            with batch_invariant_matmul():
                assert batch_invariant_enabled()
            assert batch_invariant_enabled()  # nesting restores the outer state
        assert not batch_invariant_enabled()

    def test_mode_is_thread_local(self):
        import threading
        from repro.autograd import batch_invariant_enabled, batch_invariant_matmul
        seen = {}

        def other():
            seen["other"] = batch_invariant_enabled()

        with batch_invariant_matmul():
            t = threading.Thread(target=other)
            t.start()
            t.join()
        assert seen["other"] is False  # one thread's mode never leaks

    def test_gradients_flow_under_the_mode(self):
        from repro.autograd import batch_invariant_matmul
        a = Tensor(np.random.default_rng(1).normal(size=(3, 4)),
                   requires_grad=True)
        b = Tensor(np.random.default_rng(2).normal(size=(4, 2)),
                   requires_grad=True)
        with batch_invariant_matmul():
            (a @ b).sum().backward()
        assert a.grad is not None and b.grad is not None
        np.testing.assert_allclose(a.grad, np.ones((3, 2)) @ b.data.T)
