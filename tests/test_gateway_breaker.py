"""Circuit breakers: unit state machine + shard-fleet integration.

Unit tests drive :class:`CircuitBreaker` with a fake clock so every
state transition (trip, cooldown, half-open probe, re-open, re-close)
is exercised without sleeping.  The integration test is the issue's
acceptance scenario: crash faults against exactly one
``model|format|mode`` key open *that key's* breaker — other keys keep
serving the whole time — and after the cooldown a half-open probe
(served by a shard the router ``_revive``\\ d after a kill fault)
re-closes the circuit.
"""

import time

import numpy as np
import pytest

from repro.resilience import faults
from repro.serve import (
    BreakerBoard, CircuitBreaker, CircuitOpenError, Gateway, GatewayClient,
    WorkerCrashError, micro_specs,
)
from repro.serve.breaker import BREAKER_FAILURE_KINDS

pytestmark = [pytest.mark.net]

KEY = "micro-mlp|MERSIT(8,2)|fakequant"


@pytest.fixture(autouse=True)
def _disarm(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    yield
    monkeypatch.delenv(faults.ENV_VAR, raising=False)


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# ---------------------------------------------------------------------------
# unit: state machine
# ---------------------------------------------------------------------------

def test_trips_only_on_consecutive_failures():
    clock = _Clock()
    b = CircuitBreaker(threshold=3, cooldown_s=1.0, clock=clock)
    for _ in range(2):
        b.record_failure()
    b.record_success()          # resets the consecutive count
    for _ in range(2):
        b.record_failure()
    assert b.state == "closed"
    b.record_failure()
    assert b.state == "open" and b.opens == 1


def test_open_fast_fails_then_half_open_probe_closes():
    clock = _Clock()
    b = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=clock)
    b.record_failure()
    assert b.state == "open"
    assert not b.admit() and b.fast_fails == 1
    clock.now = 5.0
    assert b.admit()                    # the half-open probe
    assert b.state == "half-open"
    assert not b.admit(), "only one probe is admitted at a time"
    b.record_success()
    assert b.state == "closed"
    assert b.admit()


def test_failed_probe_reopens_for_another_cooldown():
    clock = _Clock()
    b = CircuitBreaker(threshold=1, cooldown_s=2.0, clock=clock)
    b.record_failure()
    clock.now = 2.0
    assert b.admit()
    b.record_failure()                  # the probe itself failed
    assert b.state == "open" and b.opens == 2
    assert not b.admit(), "a failed probe restarts the cooldown"
    clock.now = 4.0
    assert b.admit()


def test_neutral_outcome_releases_the_probe_slot():
    clock = _Clock()
    b = CircuitBreaker(threshold=1, cooldown_s=1.0, clock=clock)
    b.record_failure()
    clock.now = 1.0
    assert b.admit()
    b.record_neutral()          # e.g. the probe hit a deadline error
    assert b.state == "half-open"
    assert b.admit(), "the slot must be free for the next probe"


def test_board_counts_only_backend_illness_kinds():
    clock = _Clock()
    board = BreakerBoard(threshold=1, cooldown_s=1.0, clock=clock)
    assert BREAKER_FAILURE_KINDS == {"worker-crash", "gateway-timeout",
                                     "model-load"}
    for kind in ("deadline", "queue-full", "overloaded", "bad-request"):
        board.record("k", kind)
        assert board.get("k").state == "closed", kind
    board.record("k", "worker-crash")
    assert board.get("k").state == "open"
    assert board.get("other").state == "closed"
    snap = board.snapshot()
    assert snap["k"]["opens"] == 1 and snap["other"]["opens"] == 0


# ---------------------------------------------------------------------------
# integration: breaker isolates one key on a live shard fleet
# ---------------------------------------------------------------------------

@pytest.mark.shard
@pytest.mark.chaos
def test_breaker_opens_per_key_and_probe_recloses_after_revive(monkeypatch):
    from repro.serve import BatchPolicy, ShardRouter
    monkeypatch.setenv(
        faults.ENV_VAR,
        f"shard:req/{KEY}:crash:2,shard:req/{KEY}:kill:1")
    router = ShardRouter(
        shards=2, specs="micro", calib_n=8,
        policy=BatchPolicy(max_batch=4, max_wait_ms=2.0,
                           queue_depth=64, workers=2),
        preheat=[("micro-mlp", "MERSIT(8,2)", "fakequant"),
                 ("micro-cnn", "MERSIT(8,2)", "fakequant")])
    with Gateway(router, port=0, breaker_threshold=2,
                 breaker_cooldown_s=0.5).start() as gw:
        with GatewayClient(gw.host, gw.port, seed=0, retries=0) as client:
            mlp_x = micro_specs()["micro-mlp"].requests(1, seed=3)[0]
            cnn_x = micro_specs()["micro-cnn"].requests(1, seed=3)[0]
            # two consecutive crash faults open the breaker for KEY
            for _ in range(2):
                with pytest.raises(WorkerCrashError):
                    client.infer("micro-mlp", mlp_x)
            assert gw.breakers.get(KEY).state == "open"
            # fast-fail while open: the fleet is never even asked
            with pytest.raises(CircuitOpenError):
                client.infer("micro-mlp", mlp_x)
            # ...but only the affected key: micro-cnn keeps serving
            cnn = client.infer("micro-cnn", cnn_x)
            ref_cnn = router.infer_serial("micro-cnn", cnn_x)
            assert cnn.tobytes() == ref_cnn.tobytes()
            # after the cooldown the next request is the half-open probe;
            # the armed kill fault SIGKILLs the serving worker mid-probe,
            # the router _revive()s it and redispatches, so the probe
            # still succeeds — and the breaker closes on a fleet that
            # genuinely recovered
            time.sleep(0.6)
            probe = client.infer("micro-mlp", mlp_x)
            ref = router.infer_serial("micro-mlp", mlp_x)
            assert probe.tobytes() == ref.tobytes()
            assert gw.breakers.get(KEY).state == "closed"
            assert router.respawns == 1, "the probe rode through a revive"
            assert gw.breakers.get(KEY).opens == 1
            assert gw.breakers.get(KEY).fast_fails >= 1
