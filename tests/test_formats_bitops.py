"""Bit-level codecs cross-validated against the codebook reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import get_format
from repro.formats.bitops import (
    decode_array_fast, decode_fp8, decode_mersit, decode_posit,
    encode_array_fast, encode_fp8, encode_mersit,
)

FP_FORMATS = ["FP(8,2)", "FP(8,3)", "FP(8,4)", "FP(8,5)"]
POSIT_FORMATS = ["Posit(8,0)", "Posit(8,1)", "Posit(8,2)", "Posit(8,3)"]
MERSIT_FORMATS = ["MERSIT(8,2)", "MERSIT(8,3)"]
ALL = FP_FORMATS + POSIT_FORMATS + MERSIT_FORMATS


def assert_decode_matches(fmt, fast):
    codes = np.arange(256)
    ref = fmt.values[codes]
    got = fast(codes, fmt)
    both_nan = np.isnan(ref) & np.isnan(got)
    np.testing.assert_array_equal(np.where(both_nan, 0.0, got),
                                  np.where(both_nan, 0.0, ref))


class TestDecodeExhaustive:
    @pytest.mark.parametrize("name", FP_FORMATS)
    def test_fp8(self, name):
        assert_decode_matches(get_format(name), decode_fp8)

    @pytest.mark.parametrize("name", POSIT_FORMATS)
    def test_posit(self, name):
        assert_decode_matches(get_format(name), decode_posit)

    @pytest.mark.parametrize("name", MERSIT_FORMATS)
    def test_mersit(self, name):
        assert_decode_matches(get_format(name), decode_mersit)

    @pytest.mark.parametrize("name", ALL)
    def test_dispatch(self, name):
        assert_decode_matches(get_format(name), decode_array_fast)

    def test_dispatch_falls_back_for_int8(self):
        fmt = get_format("INT8")
        codes = np.arange(256)
        np.testing.assert_array_equal(decode_array_fast(codes, fmt),
                                      fmt.decode_array(codes))

    @pytest.mark.parametrize("name", MERSIT_FORMATS)
    def test_preserves_shape(self, name):
        fmt = get_format(name)
        codes = np.arange(12).reshape(3, 4)
        assert decode_mersit(codes, fmt).shape == (3, 4)


def assert_encode_nearest(fmt, encode):
    """Encoded value must be one of the nearest representable values."""
    rng = np.random.default_rng(0)
    x = np.concatenate([
        rng.normal(size=300) * fmt.max_value / 8,
        rng.normal(size=300) * fmt.min_positive * 8,
        np.array([0.0, fmt.max_value, -fmt.max_value,
                  fmt.max_value * 3, fmt.min_positive / 5]),
        fmt.finite_values[::7],
    ])
    codes = encode(x, fmt)
    got = fmt.values[codes]
    clipped = np.clip(x, -fmt.max_value, fmt.max_value)
    best = fmt.quantize(x)
    err_got = np.abs(clipped - got)
    err_best = np.abs(clipped - best)
    bad = err_got > err_best + 1e-15
    assert not np.any(bad), (
        f"{fmt.name}: non-nearest encodings at x={x[bad][:5]} "
        f"got={got[bad][:5]} best={best[bad][:5]}")


class TestEncodeNearest:
    @pytest.mark.parametrize("name", FP_FORMATS)
    def test_fp8(self, name):
        assert_encode_nearest(get_format(name), encode_fp8)

    @pytest.mark.parametrize("name", MERSIT_FORMATS)
    def test_mersit(self, name):
        assert_encode_nearest(get_format(name), encode_mersit)

    @pytest.mark.parametrize("name", ALL)
    def test_dispatch(self, name):
        assert_encode_nearest(get_format(name), encode_array_fast)

    @pytest.mark.parametrize("name", FP_FORMATS + MERSIT_FORMATS)
    def test_roundtrip_exact_on_representables(self, name):
        fmt = get_format(name)
        vals = fmt.finite_values
        codes = encode_array_fast(vals, fmt)
        np.testing.assert_array_equal(fmt.values[codes], vals)

    @pytest.mark.parametrize("name", FP_FORMATS + MERSIT_FORMATS)
    def test_specials(self, name):
        fmt = get_format(name)
        codes = encode_array_fast(np.array([np.inf, -np.inf, 0.0]), fmt)
        got = fmt.values[codes]
        assert got[0] == fmt.max_value
        assert got[1] == -fmt.max_value
        assert got[2] == 0.0

    @given(x=st.floats(-1e4, 1e4, allow_nan=False))
    @settings(max_examples=150, deadline=None)
    def test_hypothesis_mersit_nearest(self, x):
        fmt = get_format("MERSIT(8,2)")
        code = int(encode_mersit(np.array([x]), fmt)[0])
        got = fmt.values[code]
        clipped = min(max(x, -fmt.max_value), fmt.max_value)
        best = float(fmt.quantize(np.array([x]))[0])
        assert abs(clipped - got) <= abs(clipped - best) + 1e-15

    @given(x=st.floats(-300, 300, allow_nan=False))
    @settings(max_examples=150, deadline=None)
    def test_hypothesis_fp84_nearest(self, x):
        fmt = get_format("FP(8,4)")
        code = int(encode_fp8(np.array([x]), fmt)[0])
        got = fmt.values[code]
        clipped = min(max(x, -fmt.max_value), fmt.max_value)
        best = float(fmt.quantize(np.array([x]))[0])
        assert abs(clipped - got) <= abs(clipped - best) + 1e-15


class TestSpeedContract:
    def test_fast_decode_is_vectorised(self):
        """Fast decode handles a large array in one call without error."""
        fmt = get_format("MERSIT(8,2)")
        codes = np.random.default_rng(0).integers(0, 256, 100_000)
        vals = decode_array_fast(codes, fmt)
        assert vals.shape == codes.shape
