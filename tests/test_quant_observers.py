"""Calibration observers: max / percentile / MSE."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.formats import INT8, MERSIT8_2, get_format
from repro.nn import Conv2d, Flatten, GlobalAvgPool2d, Linear, ReLU, Sequential
from repro.quant import FakeQuantizer, PTQConfig, quantize_model
from repro.quant.observers import (
    MaxObserver, MSEObserver, PercentileObserver, make_observer,
)


class TestMaxObserver:
    def test_matches_global_max(self):
        obs = MaxObserver()
        rng = np.random.default_rng(0)
        chunks = [rng.normal(size=50) for _ in range(4)]
        for c in chunks:
            obs.observe(c)
        assert obs.compute_scale() == np.abs(np.concatenate(chunks)).max()

    def test_per_channel(self):
        obs = MaxObserver(axis=1)
        obs.observe(np.array([[1.0, -5.0], [2.0, 3.0]]))
        obs.observe(np.array([[4.0, 0.5], [0.1, 0.2]]))
        np.testing.assert_array_equal(obs.compute_scale(), [4.0, 5.0])

    def test_no_data_raises(self):
        with pytest.raises(RuntimeError):
            MaxObserver().compute_scale()


class TestPercentileObserver:
    def test_below_max_for_heavy_tail(self):
        rng = np.random.default_rng(1)
        x = rng.standard_t(df=2, size=20_000)
        obs = PercentileObserver(percentile=99.0).observe(x)
        assert obs.compute_scale() < np.abs(x).max()

    def test_hundredth_percentile_equals_max(self):
        x = np.linspace(-3, 7, 101)
        obs = PercentileObserver(percentile=100.0).observe(x)
        assert obs.compute_scale() == pytest.approx(7.0)

    def test_reservoir_bounds_memory(self):
        obs = PercentileObserver(reservoir=100)
        for _ in range(5):
            obs.observe(np.ones(10_000))
        assert sum(len(s) for s in obs._samples) <= 500

    def test_per_channel(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(3, 5000))
        obs = PercentileObserver(axis=0, percentile=50.0).observe(x)
        scale = obs.compute_scale()
        assert scale.shape == (3,)
        ref = np.percentile(np.abs(x), 50.0, axis=1)
        np.testing.assert_allclose(scale, ref, rtol=0.2)

    def test_bad_percentile(self):
        with pytest.raises(ValueError):
            PercentileObserver(percentile=0.0)


class TestMSEObserver:
    def test_beats_max_scale_on_heavy_tail(self):
        rng = np.random.default_rng(3)
        x = rng.standard_t(df=2, size=5000)
        obs = MSEObserver(INT8).observe(x)
        scale = obs.compute_scale()
        from repro.quant import quantize_with_scale
        err_mse = np.mean((x - quantize_with_scale(x, INT8, scale)) ** 2)
        err_max = np.mean((x - quantize_with_scale(x, INT8, np.abs(x).max())) ** 2)
        assert err_mse <= err_max
        assert scale <= np.abs(x).max()

    def test_zero_data(self):
        obs = MSEObserver(INT8).observe(np.zeros(100))
        assert obs.compute_scale() == 1.0


class TestFactoryAndIntegration:
    def test_factory_kinds(self):
        assert isinstance(make_observer("max", INT8), MaxObserver)
        assert isinstance(make_observer("percentile", INT8), PercentileObserver)
        assert isinstance(make_observer("mse", INT8), MSEObserver)
        with pytest.raises(KeyError):
            make_observer("entropy", INT8)
        with pytest.raises(ValueError):
            make_observer("mse", INT8, axis=0)

    def test_fakequant_delegates_to_observer(self):
        fq = FakeQuantizer(MERSIT8_2, observer=MaxObserver())
        fq.observe(np.array([2.0, -8.0]))
        assert not fq.calibrated
        fq.finalize()
        assert fq.calibrated and float(fq.scale) == 8.0

    @pytest.mark.parametrize("kind", ["percentile", "mse"])
    def test_ptq_with_alternative_observer(self, kind):
        rng = np.random.default_rng(4)
        model = Sequential(
            Conv2d(3, 4, 3, padding=1, rng=rng), ReLU(),
            GlobalAvgPool2d(), Flatten(), Linear(4, 3, rng=rng))
        batches = [rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
                   for _ in range(2)]
        cfg = PTQConfig("MERSIT(8,2)", activation_observer=kind)
        quantize_model(model, cfg, batches, forward=lambda m, b: m(Tensor(b)))
        out = model(Tensor(batches[0]))
        assert np.isfinite(out.data).all()

    def test_percentile_rescues_int8_on_outliers(self):
        """The classic effect: clipping the tail helps INT8 accuracy."""
        rng = np.random.default_rng(5)
        x = rng.normal(size=20_000)
        x[:20] *= 50.0  # inject outliers
        from repro.quant import quantize_with_scale
        max_scale = np.abs(x).max()
        pct_scale = PercentileObserver(percentile=99.9).observe(x).compute_scale()
        typical = np.abs(x) < 3.0
        err_max = np.mean((x[typical] - quantize_with_scale(x[typical], INT8, max_scale)) ** 2)
        err_pct = np.mean((x[typical] - quantize_with_scale(x[typical], INT8, pct_scale)) ** 2)
        assert err_pct < err_max
