"""Codebook machinery shared by every format: quantization, encode, analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import (
    INT8,
    FP8_E4,
    MERSIT8_2,
    POSIT8_1,
    TABLE2_FORMATS,
    available_formats,
    get_format,
)
from repro.formats.analysis import (
    kulisch_product_width,
    precision_segments,
    range_with_precision,
    summarize,
)

ALL = [get_format(n) for n in TABLE2_FORMATS]


class TestRegistry:
    @pytest.mark.parametrize("name", TABLE2_FORMATS)
    def test_every_paper_format_resolves(self, name):
        fmt = get_format(name)
        assert fmt.nbits == 8

    def test_names_case_insensitive(self):
        assert get_format("mersit(8,2)") is get_format("MERSIT(8,2)")

    def test_alternate_spellings(self):
        assert get_format("fp8e4").name == "FP(8,4)"
        assert get_format("posit8_1").name == "Posit(8,1)"
        assert get_format("mersit8_2").name == "MERSIT(8,2)"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_format("bfloat16")

    def test_available_formats_order(self):
        assert available_formats()[0] == "INT8"
        assert "MERSIT(8,2)" in available_formats()


class TestQuantize:
    @pytest.mark.parametrize("fmt", ALL, ids=lambda f: f.name)
    def test_representable_values_are_fixed_points(self, fmt):
        vals = fmt.finite_values
        np.testing.assert_array_equal(fmt.quantize(vals), vals)

    @pytest.mark.parametrize("fmt", ALL, ids=lambda f: f.name)
    def test_saturation(self, fmt):
        big = np.array([1e30, -1e30, np.inf, -np.inf])
        q = fmt.quantize(big)
        np.testing.assert_array_equal(
            q, [fmt.max_value, -fmt.max_value, fmt.max_value, -fmt.max_value])

    @pytest.mark.parametrize("fmt", ALL, ids=lambda f: f.name)
    def test_nan_maps_to_zero(self, fmt):
        assert fmt.quantize(np.array([np.nan]))[0] == 0.0

    @pytest.mark.parametrize("fmt", ALL, ids=lambda f: f.name)
    def test_nearest_rounding(self, fmt):
        """|x - Q(x)| <= |x - v| for every representable v (spot check)."""
        rng = np.random.default_rng(7)
        x = rng.normal(scale=fmt.max_value / 4, size=200)
        q = fmt.quantize(x)
        err = np.abs(x - q)
        # distance to both neighbours of q must be >= err
        vals = fmt.finite_values
        idx = np.searchsorted(vals, q)
        lower = vals[np.maximum(idx - 1, 0)]
        upper = vals[np.minimum(idx + 1, len(vals) - 1)]
        assert np.all(err <= np.abs(x - lower) + 1e-15)
        assert np.all(err <= np.abs(x - upper) + 1e-15)

    @pytest.mark.parametrize("fmt", ALL, ids=lambda f: f.name)
    def test_quantize_preserves_shape_and_input(self, fmt):
        x = np.linspace(-2, 2, 24).reshape(2, 3, 4)
        x_copy = x.copy()
        q = fmt.quantize(x)
        assert q.shape == x.shape
        np.testing.assert_array_equal(x, x_copy)

    def test_quantize_is_idempotent_mersit(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=1000)
        q1 = MERSIT8_2.quantize(x)
        np.testing.assert_array_equal(MERSIT8_2.quantize(q1), q1)


class TestEncodeDecodeRoundtrip:
    @pytest.mark.parametrize("fmt", ALL, ids=lambda f: f.name)
    def test_encode_of_representable_roundtrips(self, fmt):
        for v in fmt.finite_values[:: max(1, len(fmt.finite_values) // 64)]:
            code = fmt.encode(float(v))
            assert fmt.decode(code).value == v

    @pytest.mark.parametrize("fmt", ALL, ids=lambda f: f.name)
    def test_encode_array_matches_scalar_encode(self, fmt):
        rng = np.random.default_rng(11)
        x = rng.normal(size=50)
        codes = fmt.encode_array(x)
        decoded = fmt.decode_array(codes)
        np.testing.assert_array_equal(decoded, fmt.quantize(x))

    @pytest.mark.parametrize("fmt", ALL, ids=lambda f: f.name)
    def test_decode_rejects_out_of_range(self, fmt):
        with pytest.raises(ValueError):
            fmt.decode(256)
        with pytest.raises(ValueError):
            fmt.decode(-1)


class TestHypothesisInvariants:
    @given(x=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_mersit_quantize_within_half_ulp(self, x):
        q = float(MERSIT8_2.quantize(np.array([x]))[0])
        vals = MERSIT8_2.finite_values
        clipped = min(max(x, -MERSIT8_2.max_value), MERSIT8_2.max_value)
        best = vals[np.argmin(np.abs(vals - clipped))]
        assert abs(clipped - q) <= abs(clipped - best) + 1e-12

    @given(x=st.lists(st.floats(-300, 300, allow_nan=False), min_size=1, max_size=32))
    @settings(max_examples=100, deadline=None)
    def test_quantize_monotone(self, x):
        """Quantization preserves (weak) order."""
        arr = np.sort(np.array(x))
        q = MERSIT8_2.quantize(arr)
        assert np.all(np.diff(q) >= 0)

    @given(code=st.integers(0, 255))
    @settings(max_examples=256, deadline=None)
    def test_posit_decode_total(self, code):
        d = POSIT8_1.decode(code)
        assert d.code == code


class TestAnalysis:
    def test_product_widths_match_fig2(self):
        assert kulisch_product_width(FP8_E4) == 33
        assert kulisch_product_width(POSIT8_1) == 45
        assert kulisch_product_width(MERSIT8_2) == 35

    def test_summary_row(self):
        s = summarize(MERSIT8_2)
        assert s.dynamic_range == "2^-9 ~ 2^8"
        assert s.exponent_width == 5
        assert s.significand_bits == 5

    def test_precision_segments_cover_range(self):
        segs = precision_segments(MERSIT8_2)
        assert segs[0][0] == -9 and segs[-1][1] == 8
        # segments must abut with no overlap
        for (a, b, _), (c, d, _) in zip(segs, segs[1:]):
            assert c == b + 1

    def test_mersit_holds_4bit_precision_wider_than_posit(self):
        """Paper 3.2: MERSIT(8,2)'s 4-bit-precision range beats Posit(8,1)'s."""
        m = range_with_precision(MERSIT8_2, 4)
        p = range_with_precision(POSIT8_1, 4)
        assert m is not None and p is not None
        assert (m[1] - m[0]) > (p[1] - p[0])

    def test_int8_profile(self):
        assert INT8.max_fraction_bits() == 0
        assert INT8.max_value == 127.0
