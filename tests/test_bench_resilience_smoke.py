"""Smoke test: benchmarks/bench_resilience.py runs and emits valid JSON."""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH = REPO_ROOT / "benchmarks" / "bench_resilience.py"


def test_bench_resilience_fast_mode(tmp_path):
    out = tmp_path / "BENCH_resilience.json"
    proc = subprocess.run(
        [sys.executable, str(BENCH), "--fast", "--out", str(out)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(out.read_text())
    assert "host" in payload
    s = payload["store"]
    assert s["bare_save_ms"]["min"] > 0 and s["safe_save_ms"]["min"] > 0
    assert s["save_overhead_x"] > 0 and s["load_overhead_x"] > 0
    assert "crash-safe" in proc.stdout
