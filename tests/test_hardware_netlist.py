"""Netlist infrastructure: simulation semantics, DFFs, cell library."""

import numpy as np
import pytest

from repro.hardware.cells import CELLS, cell
from repro.hardware.netlist import Bus, Circuit


class TestCellLibrary:
    def test_all_cells_have_positive_area_except_tie(self):
        for c in CELLS.values():
            if c.name == "TIE":
                assert c.area == 0.0
            else:
                assert c.area > 0

    def test_unknown_cell_raises(self):
        with pytest.raises(KeyError, match="unknown cell"):
            cell("NAND17")

    def test_delays_present(self):
        assert cell("XOR2").delay > cell("NAND2").delay > 0


class TestGateEvaluation:
    @pytest.mark.parametrize("name,fn", [
        ("AND2", lambda a, b: a & b),
        ("OR2", lambda a, b: a | b),
        ("XOR2", lambda a, b: a ^ b),
        ("NAND2", lambda a, b: not (a and b)),
        ("NOR2", lambda a, b: not (a or b)),
        ("XNOR2", lambda a, b: not (a ^ b)),
    ])
    def test_two_input_truth_tables(self, name, fn):
        c = Circuit()
        ins = c.input_bus(2)
        c.set_output("q", Bus([c.gate(name, ins[0], ins[1])]))
        stim = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=bool)
        got = c.simulate(stim)["outputs"]["q"]
        want = [int(fn(bool(a), bool(b))) for a, b in stim]
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("name,fn", [
        ("AND3", lambda a, b, d: a & b & d),
        ("OR3", lambda a, b, d: a | b | d),
        ("AOI21", lambda a, b, d: not ((a and b) or d)),
        ("OAI21", lambda a, b, d: not ((a or b) and d)),
        ("MUX2", lambda a, b, d: b if d else a),
    ])
    def test_three_input_truth_tables(self, name, fn):
        c = Circuit()
        ins = c.input_bus(3)
        c.set_output("q", Bus([c.gate(name, *ins)]))
        stim = np.array([[(v >> i) & 1 for i in range(3)] for v in range(8)],
                        dtype=bool)
        got = c.simulate(stim)["outputs"]["q"]
        want = [int(fn(*map(bool, row))) for row in stim]
        np.testing.assert_array_equal(got, want)

    def test_wrong_arity_rejected(self):
        c = Circuit()
        a = c.input_bus(1)
        with pytest.raises(ValueError, match="expects"):
            c.gate("AND2", a[0])

    def test_constant_nets(self):
        c = Circuit()
        c.input_bus(1)
        c.set_output("one", Bus([c.ONE]))
        c.set_output("zero", Bus([c.ZERO]))
        sim = c.simulate(np.zeros((2, 1), dtype=bool))
        np.testing.assert_array_equal(sim["outputs"]["one"], [1, 1])
        np.testing.assert_array_equal(sim["outputs"]["zero"], [0, 0])


class TestTrees:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 5, 9])
    def test_and_tree(self, n):
        c = Circuit()
        ins = c.input_bus(max(n, 1))
        bits = list(ins[:n])
        c.set_output("q", Bus([c.and_tree(bits)]))
        stim = np.array([[(v >> i) & 1 for i in range(max(n, 1))]
                         for v in range(1 << max(n, 1))], dtype=bool)
        got = c.simulate(stim)["outputs"]["q"]
        want = [int(all(row[:n])) if n else 1 for row in stim]
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("n", [0, 1, 2, 4, 7])
    def test_or_tree(self, n):
        c = Circuit()
        ins = c.input_bus(max(n, 1))
        bits = list(ins[:n])
        c.set_output("q", Bus([c.or_tree(bits)]))
        stim = np.array([[(v >> i) & 1 for i in range(max(n, 1))]
                         for v in range(1 << max(n, 1))], dtype=bool)
        got = c.simulate(stim)["outputs"]["q"]
        want = [int(any(row[:n])) for row in stim]
        np.testing.assert_array_equal(got, want)


class TestSequential:
    def test_dff_latches_on_cycle(self):
        """A DFF fed by an inverter of itself toggles each cycle."""
        c = Circuit()
        c.input_bus(1)
        q = c.dff(0)  # placeholder, rewired below via a trick:
        # build: d = ~q
        d = c.inv(q)
        c._dffs[0].inputs = (d,)
        c.set_output("q", Bus([q]))
        stim = np.zeros((1, 1), dtype=bool)
        out1 = c.simulate(stim, cycles=1)["state"][q]
        out2 = c.simulate(stim, cycles=2)["state"][q]
        assert bool(out1[0]) != bool(out2[0])

    def test_dff_area_counted(self):
        c = Circuit()
        a = c.input_bus(1)
        c.dff(a[0])
        assert c.area().by_cell.get("DFF") == 1

    def test_dff_initial_state_injection(self):
        """Injected state is what combinational logic sees during the cycle."""
        c = Circuit()
        a = c.input_bus(1)
        q = c.dff(a[0])
        seen = c.inv(q)  # observes q before the end-of-cycle latch
        c.set_output("nq", Bus([seen]))
        stim = np.zeros((3, 1), dtype=bool)
        sim = c.simulate(stim, initial_state={q: np.array([1, 0, 1], dtype=bool)})
        np.testing.assert_array_equal(sim["bits"]["nq"][:, 0], [0, 1, 0])


class TestBusOutputs:
    def test_multiword_output_packing(self):
        c = Circuit()
        ins = c.input_bus(4)
        c.set_output("v", Bus(ins))
        vals = np.array([[(v >> i) & 1 for i in range(4)] for v in range(16)],
                        dtype=bool)
        got = c.simulate(vals)["outputs"]["v"]
        np.testing.assert_array_equal(got, np.arange(16))

    def test_bits_layout(self):
        c = Circuit()
        ins = c.input_bus(3)
        c.set_output("v", Bus(ins))
        stim = np.array([[1, 0, 1]], dtype=bool)
        bits = c.simulate(stim)["bits"]["v"]
        np.testing.assert_array_equal(bits[0], [1, 0, 1])

    def test_bus_slice_returns_bus(self):
        b = Bus([1, 2, 3, 4])
        assert isinstance(b[1:3], Bus)
        assert b[0] == 1
