"""Shared test fixtures.

The persistent worker pool (:mod:`repro.resilience.pool`) deliberately
keeps worker processes alive across ``run_cells`` calls.  Fork workers
capture the parent's module state at fork time, so a pool forked under
one test's monkeypatches must never serve the next test: tear every pool
down after each test (cheap when no pool was started).  The warm model
memo is per-process parent state with the same hazard, so it is cleared
too, as are any shared-memory plane segments this process published
(:func:`repro.serve.shm.unlink_all`) — a test that fails between publish
and close must not leak ``/dev/shm`` entries into the next test.
"""

import pytest

from repro.resilience import pool
from repro.serve import shm
from repro.zoo import registry


@pytest.fixture(autouse=True)
def _fresh_worker_pools():
    yield
    pool.shutdown_all()
    registry.clear_warm_models()
    shm.unlink_all()
