"""Shared test fixtures.

The persistent worker pool (:mod:`repro.resilience.pool`) deliberately
keeps worker processes alive across ``run_cells`` calls.  Fork workers
capture the parent's module state at fork time, so a pool forked under
one test's monkeypatches must never serve the next test: tear every pool
down after each test (cheap when no pool was started).  The warm model
memo is per-process parent state with the same hazard, so it is cleared
too, as are any shared-memory plane segments this process published
(:func:`repro.serve.shm.unlink_all`) — a test that fails between publish
and close must not leak ``/dev/shm`` entries into the next test.

Under ``REPRO_SANITIZE=1`` the canary fixture additionally fails any
test during which the runtime sanitizer (:mod:`repro.sanitize`) observed
a lock-order inversion, and — for the serve/shard/grid/sanitize suites —
any test that leaks threads, ``/dev/shm`` segments or pipe fds past its
own teardown, so leaks localize to the test that caused them.
"""

import gc
import time

import pytest

from repro import sanitize
from repro.resilience import pool
from repro.serve import shm
from repro.zoo import registry

#: suites whose tests get the post-teardown leak check (they are the
#: ones that start threads/processes/segments on purpose)
_LEAK_MARKERS = ("serve", "shard", "grid", "sanitize", "net")

#: seconds to wait for joins/GC to retire threads, fds and segments
_LEAK_GRACE = 5.0


@pytest.fixture(autouse=True)
def _sanitize_canary(request):
    """Per-test inversion + leak canary (no-op unless sanitizer enabled)."""
    if not sanitize.enabled():
        yield
        return
    from multiprocessing import resource_tracker
    resource_tracker.ensure_running()  # its pipe belongs to the baseline
    sanitize.reset()
    before = sanitize.snapshot()
    yield
    inversions = sanitize.violations()
    if inversions:
        detail = "\n\n".join(
            f"{v['kind']} {v['edge'][0]} <-> {v['edge'][1]}\n"
            f"--- inverting acquisition ({v['thread']}):\n{v['stack']}"
            f"--- prior order ({v['prior_thread']}):\n{v['prior_stack']}"
            for v in inversions)
        pytest.fail(f"sanitizer observed lock-order inversion(s):\n{detail}",
                    pytrace=False)
    if not any(request.node.get_closest_marker(m) for m in _LEAK_MARKERS):
        return
    deadline = time.monotonic() + _LEAK_GRACE
    while True:
        gc.collect()  # retire dropped Connection objects (their pipe fds)
        after = sanitize.snapshot()
        leaked = {kind: sorted(set(after[kind]) - set(before[kind]))
                  for kind in ("threads", "segments", "pipe_fds")}
        if not any(leaked.values()):
            return
        if time.monotonic() >= deadline:
            pytest.fail(f"resource leak after {request.node.nodeid}: "
                        + ", ".join(f"{k}={v}" for k, v in leaked.items()
                                    if v),
                        pytrace=False)
        time.sleep(0.05)


@pytest.fixture(autouse=True)
def _fresh_worker_pools(_sanitize_canary):
    # depends on the canary so this teardown (pool/memo/segment cleanup)
    # runs BEFORE the canary's leak check
    yield
    pool.shutdown_all()
    registry.clear_warm_models()
    shm.unlink_all()
