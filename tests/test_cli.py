"""CLI surface: parsing and the cheap commands end to end."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_inspect_args(self):
        args = build_parser().parse_args(["inspect", "MERSIT(8,2)", "0x41"])
        assert args.format == "MERSIT(8,2)" and args.token == "0x41"

    def test_ptq_defaults(self):
        args = build_parser().parse_args(["ptq", "VGG16"])
        assert args.eval_n == 300 and "MERSIT(8,2)" in args.formats


class TestCheapCommands:
    def test_formats_lists_all(self, capsys):
        assert main(["formats"]) == 0
        out = capsys.readouterr().out
        assert "MERSIT(8,2)" in out and "Posit(8,1)" in out and "INT8" in out

    def test_inspect_overview(self, capsys):
        assert main(["inspect", "MERSIT(8,2)"]) == 0
        out = capsys.readouterr().out
        assert "2^-9" in out

    def test_inspect_decode_code(self, capsys):
        assert main(["inspect", "MERSIT(8,2)", "0b01000000"]) == 0
        out = capsys.readouterr().out
        assert "0b01000000" in out

    def test_inspect_encode_value(self, capsys):
        assert main(["inspect", "FP(8,4)", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "0.5" in out

    def test_hardware_small_stream(self, capsys):
        assert main(["hardware", "--formats", "MERSIT(8,2)", "--stream", "32"]) == 0
        out = capsys.readouterr().out
        assert "yes" in out  # exactness check passed

    def test_ptq_unknown_model(self, capsys):
        assert main(["ptq", "AlexNet"]) == 2

    def test_experiments_unknown_name(self, capsys):
        assert main(["experiments", "fig99"]) == 2

    def test_experiments_table1(self, capsys):
        assert main(["experiments", "table1"]) == 0
        out = capsys.readouterr().out
        assert "MATCHES PAPER" in out

    def test_experiments_jobs_propagated(self, monkeypatch):
        import repro.experiments.runner as runner
        seen = {}

        def fake_runner(argv):
            seen["argv"] = argv
            return 0

        monkeypatch.setattr(runner, "main", fake_runner)
        assert main(["experiments", "table1", "--jobs", "4"]) == 0
        assert seen["argv"] == ["table1", "--jobs", "4"]

    def test_experiments_always_passes_explicit_argv(self, monkeypatch):
        # regression: empty names used to fall back to this process's argv
        import repro.experiments.runner as runner
        seen = {}

        def fake_runner(argv):
            seen["argv"] = argv
            return 0

        monkeypatch.setattr(runner, "main", fake_runner)
        assert main(["experiments"]) == 0
        assert seen["argv"] == []


class TestServeCommand:
    def test_serve_micro_model_end_to_end(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_CACHE", str(tmp_path / "cache"))
        assert main(["serve", "micro-mlp", "--requests", "12",
                     "--concurrency", "4", "--calib", "8", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "closed-loop micro-mlp" in out and "12/12 ok" in out
        assert "serve metrics" in out and "batch histo" in out

    def test_serve_unknown_model(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_CACHE", str(tmp_path / "cache"))
        assert main(["serve", "no-such-model"]) == 2
        assert "unknown model" in capsys.readouterr().out
