"""CLA / Wallace variants: exhaustive equivalence and area-delay trade-off."""

import numpy as np
import pytest

from repro.hardware.arith_variants import carry_lookahead_adder, wallace_multiplier
from repro.hardware.components import array_multiplier, ripple_adder
from repro.hardware.netlist import Circuit


def stimulus(pairs, widths):
    rows = []
    for tup in pairs:
        bits = []
        for v, w in zip(tup, widths):
            bits.extend((v >> i) & 1 for i in range(w))
        rows.append(bits)
    return np.array(rows, dtype=bool)


class TestCarryLookahead:
    @pytest.mark.parametrize("width", [2, 4, 6])
    def test_exhaustive_matches_ripple(self, width):
        c = Circuit()
        a = c.input_bus(width)
        b = c.input_bus(width)
        s_cla, cout_cla = carry_lookahead_adder(c, a, b)
        s_rip, cout_rip = ripple_adder(c, a, b)
        c.set_output("cla", s_cla)
        c.set_output("rip", s_rip)
        c.set_output("cc", [cout_cla])
        c.set_output("cr", [cout_rip])
        pairs = [(x, y) for x in range(1 << width) for y in range(1 << width)]
        sim = c.simulate(stimulus(pairs, [width, width]))
        np.testing.assert_array_equal(sim["outputs"]["cla"], sim["outputs"]["rip"])
        np.testing.assert_array_equal(sim["outputs"]["cc"], sim["outputs"]["cr"])

    def test_with_carry_in(self):
        c = Circuit()
        a = c.input_bus(4)
        b = c.input_bus(4)
        ci = c.input_bus(1)
        s, cout = carry_lookahead_adder(c, a, b, ci[0])
        c.set_output("s", s)
        c.set_output("c", [cout])
        pairs = [(x, y, m) for x in range(16) for y in range(16) for m in (0, 1)]
        sim = c.simulate(stimulus(pairs, [4, 4, 1]))
        got = sim["outputs"]["s"] + (sim["outputs"]["c"] << 4)
        np.testing.assert_array_equal(got, [x + y + m for x, y, m in pairs])

    def test_width_mismatch(self):
        c = Circuit()
        with pytest.raises(ValueError):
            carry_lookahead_adder(c, c.input_bus(3), c.input_bus(4))

    def test_area_delay_tradeoff(self):
        """CLA: more area, less delay than ripple at useful widths."""
        def build(kind, width):
            c = Circuit()
            a = c.input_bus(width)
            b = c.input_bus(width)
            fn = carry_lookahead_adder if kind == "cla" else ripple_adder
            s, cout = fn(c, a, b)
            c.set_output("s", s)
            return c
        width = 16
        cla = build("cla", width)
        rip = build("ripple", width)
        assert cla.area().total > rip.area().total
        assert cla.critical_path() < rip.critical_path()


class TestWallace:
    @pytest.mark.parametrize("n,m", [(3, 3), (4, 4), (5, 5)])
    def test_exhaustive_matches_array(self, n, m):
        c = Circuit()
        a = c.input_bus(n)
        b = c.input_bus(m)
        c.set_output("w", wallace_multiplier(c, a, b))
        c.set_output("r", array_multiplier(c, a, b))
        pairs = [(x, y) for x in range(1 << n) for y in range(1 << m)]
        sim = c.simulate(stimulus(pairs, [n, m]))
        np.testing.assert_array_equal(sim["outputs"]["w"], sim["outputs"]["r"])
        np.testing.assert_array_equal(sim["outputs"]["w"],
                                      [x * y for x, y in pairs])

    def test_wallace_faster_at_width(self):
        def build(kind, width):
            c = Circuit()
            a = c.input_bus(width)
            b = c.input_bus(width)
            fn = wallace_multiplier if kind == "w" else array_multiplier
            c.set_output("p", fn(c, a, b))
            return c
        w8 = build("w", 8)
        a8 = build("a", 8)
        assert w8.critical_path() < a8.critical_path()
