"""Runtime sanitizer: inversions, reentrancy, leaks, static cross-check.

Fake "repro" modules are exec'd from real tmp files so that lock
creation sites carry genuine (file, line) identities — the same keys
:func:`repro.analysis.concurrency.static_graph` exports, which is what
makes the observed-vs-static cross-check here an end-to-end test.
"""

import textwrap
import threading

import pytest

from repro import sanitize

pytestmark = pytest.mark.sanitize


@pytest.fixture()
def sanitizer():
    was = sanitize.enabled()
    sanitize.enable()
    sanitize.reset()
    yield sanitize
    sanitize.reset()  # drop planted violations before the conftest canary
    if not was:
        sanitize.disable()


def load_fake(tmp_path, name: str, src: str):
    """Exec ``src`` as module ``repro.<name>`` backed by a real file."""
    path = tmp_path / f"{name}.py"
    path.write_text(textwrap.dedent(src))
    namespace = {"__name__": f"repro.{name}", "__file__": str(path)}
    exec(compile(path.read_text(), str(path), "exec"), namespace)
    return namespace, path


ORDERED = """\
    import threading
    A = threading.Lock()
    B = threading.Lock()
    def ab():
        with A:
            with B:
                pass
    def ba():
        with B:
            with A:
                pass
    """


class TestTracking:
    def test_repro_locks_are_wrapped(self, sanitizer, tmp_path):
        mod, _ = load_fake(tmp_path, "wrapme", "import threading\n"
                                               "L = threading.Lock()\n")
        assert type(mod["L"]).__name__ == "_TrackedLock"

    def test_foreign_locks_stay_raw(self, sanitizer):
        # this test module is not a repro module: raw lock expected
        lock = threading.Lock()
        assert type(lock).__name__ != "_TrackedLock"
        import queue
        q = queue.Queue()  # stdlib internals must never be instrumented
        assert type(q.mutex).__name__ != "_TrackedLock"

    def test_extension_internal_lock_not_misattributed(self, sanitizer,
                                                       tmp_path):
        # numpy's BitGenerator creates its lock from C code: the nearest
        # Python frame is the repro caller, which must NOT be recorded
        # as a repro lock creation site
        mod, _ = load_fake(tmp_path, "rngmod", """\
            import numpy as np
            def make_rng():
                return np.random.default_rng(0)
            """)
        rng = mod["make_rng"]()
        assert type(rng.bit_generator.lock).__name__ != "_TrackedLock"

    def test_nested_acquire_records_edge(self, sanitizer, tmp_path):
        mod, path = load_fake(tmp_path, "edges", ORDERED)
        mod["ab"]()
        ((site_a, site_b),) = sanitize.observed_edges()
        assert site_a == (str(path), 2) and site_b == (str(path), 3)

    def test_rlock_reentrancy_no_self_edge(self, sanitizer, tmp_path):
        mod, _ = load_fake(tmp_path, "reent", """\
            import threading
            R = threading.RLock()
            def twice():
                with R:
                    with R:
                        pass
            """)
        mod["twice"]()
        assert sanitize.observed_edges() == []
        assert sanitize.violations() == []

    def test_condition_wait_releases_held_entry(self, sanitizer, tmp_path):
        mod, _ = load_fake(tmp_path, "condmod", """\
            import threading
            C = threading.Condition()
            L = threading.Lock()
            def wait_then_lock():
                with C:
                    C.wait(0.01)
                with L:
                    with C:
                        pass
            """)
        mod["wait_then_lock"]()
        # the only edge is L -> C from the second block; the wait inside
        # the first block must not have left C marked held
        edges = sanitize.observed_edges()
        assert len(edges) == 1
        assert sanitize.violations() == []


class TestInversion:
    def test_opposite_orders_reported_with_both_stacks(self, sanitizer,
                                                       tmp_path):
        mod, path = load_fake(tmp_path, "invert", ORDERED)
        mod["ab"]()
        mod["ba"]()
        (v,) = sanitize.violations()
        assert v["kind"] == "lock-inversion"
        assert "ba" in v["stack"] and "ab" in v["prior_stack"]
        assert str(path) in v["stack"]

    def test_consistent_order_clean(self, sanitizer, tmp_path):
        mod, _ = load_fake(tmp_path, "consistent", ORDERED)
        mod["ab"]()
        mod["ab"]()
        assert sanitize.violations() == []

    def test_reset_clears_history(self, sanitizer, tmp_path):
        mod, _ = load_fake(tmp_path, "resettable", ORDERED)
        mod["ab"]()
        sanitize.reset()
        mod["ba"]()  # no prior ab edge on record: not an inversion
        assert sanitize.violations() == []


class TestSnapshot:
    def test_snapshot_shape(self, sanitizer):
        snap = sanitize.snapshot()
        assert set(snap) == {"threads", "segments", "pipe_fds"}
        assert "MainThread" in snap["threads"]

    def test_thread_leak_visible_then_gone(self, sanitizer):
        before = sanitize.snapshot()
        stop = threading.Event()
        t = threading.Thread(target=stop.wait, name="canary-probe")
        t.start()
        during = sanitize.snapshot()
        assert "canary-probe" in set(during["threads"]) - set(before["threads"])
        stop.set()
        t.join()
        after = sanitize.snapshot()
        assert "canary-probe" not in after["threads"]

    def test_segment_leak_visible_then_gone(self, sanitizer):
        from repro.serve import shm
        before = sanitize.snapshot()
        seg = shm.publish("probe", {"k": 1}, {})
        during = sanitize.snapshot()
        assert set(during["segments"]) - set(before["segments"])
        seg.unlink()
        after = sanitize.snapshot()
        assert set(after["segments"]) == set(before["segments"])


class TestCrossCheck:
    def test_observed_edges_match_static_graph(self, sanitizer, tmp_path):
        mod, path = load_fake(tmp_path, "matching", ORDERED)
        mod["ab"]()
        result = sanitize.cross_check([path])
        assert result["observed_edges"] == 1
        assert result["gaps"] == []

    def test_statically_invisible_lock_is_a_gap(self, sanitizer, tmp_path):
        mod, path = load_fake(tmp_path, "hidden", """\
            import threading
            def make():
                d = {}
                d["a"] = threading.Lock()
                d["b"] = threading.Lock()
                return d
            def use(d):
                with d["a"]:
                    with d["b"]:
                        pass
            """)
        mod["use"](mod["make"]())
        result = sanitize.cross_check([path])
        (gap,) = result["gaps"]
        assert gap["kind"] == "unknown-lock"

    def test_statically_invisible_edge_is_a_gap(self, sanitizer, tmp_path):
        mod, path = load_fake(tmp_path, "sneaky", """\
            import threading
            A = threading.Lock()
            B = threading.Lock()
            def sneaky():
                with globals()["A"]:
                    with globals()["B"]:
                        pass
            """)
        mod["sneaky"]()
        result = sanitize.cross_check([path])
        (gap,) = result["gaps"]
        assert gap["kind"] == "missing-edge"
        assert gap["edge"] == ["sneaky.A", "sneaky.B"]

    def test_repo_serve_stack_has_no_gaps(self, sanitizer):
        """Drive the real repository resolve path; every observed edge
        must be predicted by the static graph (the acceptance cross-check)."""
        from repro.serve.repository import ModelRepository
        from repro.zoo import registry as zoo_registry

        repo = ModelRepository()
        try:
            zoo_registry.dataset()  # warm outside the timed path
        except Exception:
            pass
        try:
            repo.resolve("MiniVGG-11", "MERSIT(8,2)", "engine")
        except Exception:
            pass  # model cache may be cold in a minimal checkout; the
            #       lock edges we care about were still exercised
        result = sanitize.cross_check()
        gaps = [g for g in result["gaps"]
                if "conftest" not in str(g.get("edge", ""))]
        assert gaps == [], gaps


class TestLifecycle:
    def test_enable_is_idempotent(self, sanitizer):
        sanitize.enable()
        sanitize.enable()
        assert sanitize.enabled()

    def test_disable_restores_factories(self):
        was = sanitize.enabled()
        sanitize.enable()
        sanitize.disable()
        assert threading.Lock is not None
        lock = threading.Lock()
        assert type(lock).__name__ != "_TrackedLock"
        if was:  # leave the session the way we found it
            sanitize.enable()
