"""Codebook round-trip and rounding-rule pins, under both kernel backends.

Satellite properties of the engine work:

* exhaustive 256-code encode/decode round trip for every registered
  format, under both the bit-LUT and the reference quantize kernels,
* codebook monotonicity (the sorted finite values are strictly
  increasing — the property every searchsorted path relies on),
* one tie-break rule everywhere: round to nearest, ties **away from
  zero**, pinned at every exact codebook midpoint for the kernels and
  for :func:`repro.formats.arithmetic._round_to_code`,
* regressions for the two historical divergences: INT8 ``exact_value``
  (decode fields are not of the ``(1+f)*2^e`` form) and the ``Fraction
  -> float64`` double rounding that flipped >53-bit ties in
  ``_round_to_code``.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro import kernels
from repro.engine import planes_for, qdot
from repro.formats import get_format, registered_formats
from repro.formats.arithmetic import _round_to_code, dot, exact_value

ALL_FORMATS = [fmt.name for fmt in registered_formats()]
BACKENDS = ["lut", "reference"]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("fmt_name", ALL_FORMATS)
def test_exhaustive_roundtrip(fmt_name, backend):
    """decode -> encode maps every finite code back to its own value."""
    fmt = get_format(fmt_name)
    finite = [(c, d.value) for c, d in enumerate(fmt.decoded) if d.is_finite]
    codes = np.array([c for c, _ in finite])
    values = np.array([v for _, v in finite])
    with kernels.use_backend(backend):
        back = fmt.encode_array(values)
    # codes may alias (duplicate values keep one canonical code), so the
    # round-trip contract is on the value, not the code
    assert np.array_equal(fmt.decode_array(back), values)
    # and the canonical codes of distinct values round-trip exactly
    uniq, counts = np.unique(values, return_counts=True)
    distinct = np.isin(values, uniq[counts == 1])
    assert np.array_equal(back[distinct], codes[distinct])


@pytest.mark.parametrize("fmt_name", ALL_FORMATS)
def test_codebook_strictly_monotonic(fmt_name):
    fmt = get_format(fmt_name)
    planes = planes_for(fmt)
    assert np.all(np.diff(planes.sorted_values) > 0)
    # and the planes decode to exactly the codebook values
    for value, code in zip(planes.sorted_values, planes.sorted_codes):
        assert planes.decode_exact(int(code)) == Fraction(float(value))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("fmt_name", ALL_FORMATS)
def test_midpoint_ties_round_away_from_zero(fmt_name, backend):
    """Every exact codebook midpoint quantizes away from zero.

    Adjacent 8-bit codebook values sum in well under 53 bits, so the
    float64 midpoints are exact and the kernel paths see the true tie.
    """
    fmt = get_format(fmt_name)
    values, codes = fmt._sorted_codes
    mids = (values[1:] + values[:-1]) / 2.0
    for lo, hi in zip(values, values[1:]):
        assert Fraction(float(lo)) + Fraction(float(hi)) == 2 * Fraction(float((lo + hi) / 2))
    expect = np.where(mids > 0, codes[1:], codes[:-1])
    with kernels.use_backend(backend):
        got = fmt.encode_array(mids)
    assert np.array_equal(fmt.decode_array(got), fmt.decode_array(expect))


@pytest.mark.parametrize("fmt_name", ["INT8", "MERSIT(8,2)", "Posit(8,1)"])
def test_round_to_code_agrees_with_kernels_on_ties(fmt_name):
    """The exact-rational rounder lands on the same side as the kernels."""
    fmt = get_format(fmt_name)
    values, codes = fmt._sorted_codes
    for lo, hi in zip(values, values[1:]):
        mid = Fraction(float(lo)) / 2 + Fraction(float(hi)) / 2
        got = _round_to_code(fmt, mid)
        expect = float(hi) if mid > 0 else float(lo)
        assert fmt.decode(got).value == expect


def test_int8_exact_value_is_the_decoded_value():
    """Regression: INT8 decode fields are not (1+f)*2^e; exact_value must
    come from the value, not the fields (3 used to come back as 2)."""
    fmt = get_format("INT8")
    for value in (1.0, 3.0, -5.0, 100.0):
        code = int(fmt.encode_array(np.array([value]))[0])
        assert exact_value(fmt, code) == Fraction(value)
    planes = planes_for(fmt)
    for c, d in enumerate(fmt.decoded):
        if d.is_finite:
            assert planes.decode_exact(c) == Fraction(d.value)
            assert exact_value(fmt, c) == Fraction(d.value)


def test_wide_accumulator_tie_is_not_double_rounded():
    """Regression: a sum equal to ``mid - 2^-48`` must round *down*.

    ``Fraction -> float64`` collapses the ``2^-48`` term for midpoints in
    high binades (the gap is far above float64's 2^-52 relative step), so
    an implementation that casts before encoding flips the result across
    the midpoint.  Both the rational reference and the engine must resist.
    """
    fmt = get_format("Posit(8,2)")
    values, codes = fmt._sorted_codes
    vals = [Fraction(float(v)) for v in values]
    value_set = set(vals)
    minpos = min(v for v in vals if v > 0)
    assert minpos == Fraction(1, 2**24)

    def power_code(p: Fraction) -> int:
        i = vals.index(p)
        return int(codes[i])

    picked = None
    for i in range(len(vals) - 1, 0, -1):
        hi, lo = vals[i], vals[i - 1]
        if hi < 1024:
            break
        halfgap = (hi - lo) / 2
        if halfgap.numerator != 1 and (halfgap.numerator & (halfgap.numerator - 1)):
            continue  # not a power of two
        g = halfgap.numerator.bit_length() - 1 - (halfgap.denominator.bit_length() - 1)
        for g1 in range(-24, 21):
            f1, f2 = Fraction(2) ** g1, Fraction(2) ** (g - g1)
            if f1 in value_set and -f2 in value_set:
                picked = (lo, hi, f1, f2)
                break
        if picked:
            break
    assert picked is not None, "no factorable high-binade midpoint found"
    lo, hi, f1, f2 = picked

    one = Fraction(1)
    a = [power_code(hi), power_code(f1), power_code(minpos)]
    b = [power_code(one), power_code(-f2), power_code(-minpos)]
    exact = hi - f1 * f2 - minpos * minpos
    mid = (lo + hi) / 2
    assert exact == mid - minpos * minpos
    # the tie the float64 cast would see: exactly the midpoint
    assert Fraction(float(exact)) == mid

    code_ref, sum_ref = dot(fmt, a, b)
    assert sum_ref == exact
    assert fmt.decode(code_ref).value == float(lo)
    assert qdot(fmt, a, b) == code_ref
