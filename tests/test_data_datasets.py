"""Synthetic datasets: determinism, split disjointness, label structure."""

import numpy as np
import pytest

from repro.data import GLUE_TASKS, GlueTask, SynthImageNet, TASK_METRICS, make_task


class TestSynthImageNet:
    def test_deterministic_across_instances(self):
        a = SynthImageNet(num_classes=4, image_size=16, seed=9).sample(20, seed=5)
        b = SynthImageNet(num_classes=4, image_size=16, seed=9).sample(20, seed=5)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        ds = SynthImageNet(num_classes=4, image_size=16)
        a = ds.sample(20, seed=1)
        b = ds.sample(20, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_splits_are_disjoint_streams(self):
        ds = SynthImageNet(num_classes=4, image_size=16)
        tr = ds.train_split(10)
        ca = ds.calibration_split(10)
        te = ds.test_split(10)
        assert not np.array_equal(tr.images, ca.images)
        assert not np.array_equal(ca.images, te.images)

    def test_shapes_and_dtypes(self):
        ds = SynthImageNet(num_classes=5, image_size=20)
        split = ds.sample(7, seed=0)
        assert split.images.shape == (7, 3, 20, 20)
        assert split.images.dtype == np.float32
        assert split.labels.shape == (7,)
        assert split.labels.dtype == np.int64

    def test_labels_in_range(self):
        ds = SynthImageNet(num_classes=6, image_size=16)
        labels = ds.sample(300, seed=3).labels
        assert labels.min() >= 0 and labels.max() < 6
        assert len(np.unique(labels)) == 6  # every class appears

    def test_batches_cover_split(self):
        ds = SynthImageNet(num_classes=3, image_size=16)
        split = ds.sample(25, seed=0)
        seen = 0
        for x, y in split.batches(8):
            assert len(x) == len(y) <= 8
            seen += len(x)
        assert seen == 25

    def test_classes_are_distinguishable(self):
        """Mean class prototypes must differ (the task is not degenerate)."""
        ds = SynthImageNet(num_classes=3, image_size=16)
        split = ds.sample(300, seed=1)
        means = [split.images[split.labels == c].mean(axis=0) for c in range(3)]
        for i in range(3):
            for j in range(i + 1, 3):
                assert np.abs(means[i] - means[j]).mean() > 0.05


class TestGlueTasks:
    @pytest.mark.parametrize("name", GLUE_TASKS)
    def test_deterministic(self, name):
        a = make_task(name).sample(30, seed=4)
        b = make_task(name).sample(30, seed=4)
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_array_equal(a.labels, b.labels)

    @pytest.mark.parametrize("name", GLUE_TASKS)
    def test_shapes_and_mask(self, name):
        t = make_task(name, seq_len=20)
        split = t.sample(15, seed=0)
        assert split.ids.shape == (15, 20)
        assert split.mask.shape == (15, 20)
        # mask is 1 exactly on non-pad positions
        np.testing.assert_array_equal(split.mask, (split.ids != t.vocab.pad))

    @pytest.mark.parametrize("name", GLUE_TASKS)
    def test_starts_with_cls(self, name):
        t = make_task(name)
        split = t.sample(10, seed=0)
        assert np.all(split.ids[:, 0] == t.vocab.cls)

    def test_label_counts(self):
        assert make_task("mnli").num_labels == 3
        assert make_task("sst2").num_labels == 2

    def test_cola_imbalance(self):
        labels = make_task("cola").sample(1000, seed=1).labels
        pos = labels.mean()
        assert 0.6 < pos < 0.8  # the 70/30 CoLA-like imbalance

    def test_mrpc_balance(self):
        labels = make_task("mrpc").sample(1000, seed=1).labels
        assert 0.4 < labels.mean() < 0.6

    def test_mnli_covers_three_classes(self):
        labels = make_task("mnli").sample(300, seed=1).labels
        assert set(np.unique(labels)) == {0, 1, 2}

    def test_pair_tasks_contain_sep(self):
        for name in ("mrpc", "mnli"):
            t = make_task(name)
            split = t.sample(20, seed=0)
            assert np.all((split.ids == t.vocab.sep).sum(axis=1) == 1)

    def test_sst2_has_no_sep(self):
        t = make_task("sst2")
        split = t.sample(20, seed=0)
        assert np.all((split.ids == t.vocab.sep).sum(axis=1) == 0)

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError):
            make_task("qqp")

    def test_metrics_registry(self):
        assert TASK_METRICS["cola"] == "matthews"
        assert TASK_METRICS["mrpc"] == "f1"

    def test_mnli_contradiction_has_negation_marker(self):
        t = make_task("mnli")
        split = t.sample(400, seed=2)
        has_neg = (split.ids == t.vocab.neg).any(axis=1)
        # exactly the contradiction class carries the marker
        assert np.all(has_neg[split.labels == 2])
        assert not np.any(has_neg[split.labels != 2])
