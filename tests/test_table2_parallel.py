"""Regression: the ``--jobs N`` Table 2 fill is byte-identical to serial.

The grid cells run on a fork-based process pool but are committed in
submission order, so the artifact JSON must come out byte-for-byte the
same as a serial fill.  The zoo is monkeypatched with tiny deterministic
stand-ins (real quantization, fake data/metrics) so the 2x2 grid runs in
seconds; fork workers inherit the patched module state.
"""

import os

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.experiments import table2
from repro.nn.layers import Linear
from repro.nn.module import Module


class _TinyModel(Module):
    def __init__(self, seed: int):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(8, 16, rng=rng)
        self.fc2 = Linear(16, 4, rng=rng)

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


class _Entry:
    kind = "vision"
    metric = "accuracy"


class _Split:
    def __init__(self, n: int):
        rng = np.random.default_rng(n)
        self.x = rng.normal(size=(n, 8)).astype(np.float32)

    def batches(self, batch_size: int):
        return [(self.x[i:i + batch_size],)
                for i in range(0, len(self.x), batch_size)]


class _Data:
    def calibration_split(self, n, seed=0):
        return _Split(n + 1000 * seed)

    def test_split(self, n):
        return _Split(n)


def _fake_pretrained(name: str, memo: bool = False):
    return _TinyModel(seed=sum(map(ord, name))), {}


def _fake_evaluate(model, split, *args):
    with no_grad():
        out = model(Tensor(split.x))
    return float(np.sum(np.abs(out.data)))


@pytest.fixture
def tiny_zoo(monkeypatch):
    monkeypatch.setattr(table2, "ALL_MODELS",
                        {"tinyA": _Entry(), "tinyB": _Entry()})
    monkeypatch.setattr(table2, "pretrained", _fake_pretrained)
    monkeypatch.setattr(table2, "dataset", lambda: _Data())
    monkeypatch.setattr(table2, "evaluate_vision", _fake_evaluate)


def _run_grid(tmp_dir, monkeypatch, jobs: int) -> bytes:
    monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_dir))
    result = table2.run(models=["tinyA", "tinyB"],
                        formats=["MERSIT(8,2)", "Posit(8,1)"],
                        eval_n=16, calib_n=8, refresh=True, jobs=jobs)
    assert set(result["grid"]) == {"tinyA", "tinyB"}
    return (tmp_dir / "table2.json").read_bytes()


def test_parallel_grid_is_byte_identical_to_serial(tiny_zoo, tmp_path,
                                                   monkeypatch):
    serial = _run_grid(tmp_path / "serial", monkeypatch, jobs=1)
    parallel = _run_grid(tmp_path / "parallel", monkeypatch, jobs=2)
    assert serial == parallel
    # and a re-run over the existing artifact changes nothing (cache hit)
    monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path / "parallel"))
    table2.run(models=["tinyA", "tinyB"],
               formats=["MERSIT(8,2)", "Posit(8,1)"],
               eval_n=16, calib_n=8, jobs=2)
    assert (tmp_path / "parallel" / "table2.json").read_bytes() == serial


def _run_seeds(tmp_dir, monkeypatch, jobs, seeds):
    monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_dir))
    result = table2.run(models=["tinyA", "tinyB"],
                        formats=["MERSIT(8,2)", "Posit(8,1)"],
                        eval_n=16, calib_n=8, refresh=True, jobs=jobs,
                        seeds=seeds)
    return result, (tmp_dir / "table2.json").read_bytes()


def test_seeds_axis_parallel_byte_identical_to_serial(tiny_zoo, tmp_path,
                                                      monkeypatch):
    _, serial = _run_seeds(tmp_path / "serial", monkeypatch, 1, [0, 1, 2])
    result, parallel = _run_seeds(tmp_path / "parallel", monkeypatch, 2,
                                  [0, 1, 2])
    assert serial == parallel
    cell = result["grid"]["tinyA"]["MERSIT(8,2)"]
    assert set(cell["seeds"]) == {"0", "1", "2"}
    # FP32 takes no calibration, so it stays a scalar even in seeds mode
    assert isinstance(result["grid"]["tinyA"]["FP32"], float)
    # different calibration seeds must actually move the tiny model's score
    assert len(set(cell["seeds"].values())) > 1


def test_legacy_scalar_migrates_and_seed0_is_not_recomputed(tiny_zoo,
                                                            tmp_path,
                                                            monkeypatch):
    monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
    legacy = table2.run(models=["tinyA"], formats=["MERSIT(8,2)"],
                        eval_n=16, calib_n=8, refresh=True)
    legacy_score = legacy["grid"]["tinyA"]["MERSIT(8,2)"]
    assert isinstance(legacy_score, float)

    seen = []
    real_cell = table2._eval_cell

    def counting_cell(name, fmt, eval_n, calib_n, seed=0):
        seen.append((name, fmt, seed))
        return real_cell(name, fmt, eval_n, calib_n, seed)

    monkeypatch.setattr(table2, "_eval_cell", counting_cell)
    upgraded = table2.run(models=["tinyA"], formats=["MERSIT(8,2)"],
                          eval_n=16, calib_n=8, seeds=[0, 1])
    cell = upgraded["grid"]["tinyA"]["MERSIT(8,2)"]
    # the legacy scalar became seed 0 in place — no recompute, no data loss
    assert cell["seeds"]["0"] == legacy_score
    assert seen == [("tinyA", "MERSIT(8,2)", 1)]
    assert "1" in cell["seeds"]


def test_render_shows_seed_error_bars(tiny_zoo, tmp_path, monkeypatch):
    monkeypatch.setattr(table2, "MODEL_ORDER", ["tinyA", "tinyB"])
    result, _ = _run_seeds(tmp_path, monkeypatch, 1, [0, 1, 2])
    out = table2.render(result)
    assert "±" in out
    assert "error bars" in out


def test_grid_scores_are_real_numbers(tiny_zoo, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
    result = table2.run(models=["tinyA"], formats=["MERSIT(8,2)"],
                        eval_n=16, calib_n=8, refresh=True)
    row = result["grid"]["tinyA"]
    assert set(row) == {"FP32", "MERSIT(8,2)"}
    assert all(np.isfinite(v) for v in row.values())
    # quantization must actually change the score of the tiny model
    assert row["FP32"] != row["MERSIT(8,2)"]
