"""Sensitivity sweep and activation statistics tooling."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Conv2d, Flatten, GlobalAvgPool2d, Linear, ReLU, Sequential
from repro.quant import (
    PTQConfig, collect_activation_stats, layer_sensitivity, quantized_layers,
    summarize_stats,
)
from repro.quant.activation_stats import ActivationStats


def tiny_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(3, 4, 3, padding=1, rng=rng), ReLU(),
        Conv2d(4, 4, 3, padding=1, rng=rng),
        GlobalAvgPool2d(), Flatten(), Linear(4, 3, rng=rng),
    )


def images(n=8, seed=0):
    return np.random.default_rng(seed).normal(size=(n, 3, 8, 8)).astype(np.float32)


class TestLayerSensitivity:
    def test_returns_one_entry_per_layer(self):
        model = tiny_model()
        x = images()
        res = layer_sensitivity(
            model, PTQConfig("FP(8,2)"), [x],
            evaluate=lambda m: float(m(Tensor(x)).data.mean()),
            forward=lambda m, b: m(Tensor(b)))
        assert len(res) == 3
        assert res == sorted(res, key=lambda r: -r.drop)

    def test_model_restored_after_sweep(self):
        model = tiny_model()
        x = images()
        ref = model(Tensor(x)).data.copy()
        layer_sensitivity(model, PTQConfig("INT8"), [x],
                          evaluate=lambda m: 0.0,
                          forward=lambda m, b: m(Tensor(b)))
        np.testing.assert_array_equal(model(Tensor(x)).data, ref)
        assert all(l.weight_quant is None for _, l in quantized_layers(model))

    def test_empty_calibration_raises(self):
        with pytest.raises(ValueError):
            layer_sensitivity(tiny_model(), PTQConfig("INT8"), [],
                              evaluate=lambda m: 0.0)

    def test_narrow_format_causes_larger_drops(self):
        """A crude format should hurt an eval metric more than a fine one."""
        model = tiny_model()
        x = images(16)
        ref = model(Tensor(x)).data

        def mse_metric(m):
            return -float(((m(Tensor(x)).data - ref) ** 2).mean())

        hi = layer_sensitivity(model, PTQConfig("Posit(8,1)"), [x],
                               evaluate=mse_metric, forward=lambda m, b: m(Tensor(b)))
        lo = layer_sensitivity(model, PTQConfig("FP(8,5)"), [x],
                               evaluate=mse_metric, forward=lambda m, b: m(Tensor(b)))
        assert sum(r.drop for r in lo) > sum(r.drop for r in hi)


class TestActivationStats:
    def test_one_stat_per_layer(self):
        model = tiny_model()
        stats = collect_activation_stats(model, images())
        assert len(stats) == 3
        assert all(s.abs_max >= s.abs_median >= 0 for s in stats)

    def test_model_forward_restored(self):
        model = tiny_model()
        x = images()
        collect_activation_stats(model, x)
        # hooks removed: a second plain forward works and type is intact
        out = model(Tensor(x))
        assert out.shape == (8, 3)

    def test_summary_keys(self):
        model = tiny_model()
        s = summarize_stats(collect_activation_stats(model, images()))
        assert set(s) == {"layers", "mean_range_ratio", "max_range_ratio",
                          "mean_kurtosis", "min_median_int8_levels"}
        assert s["layers"] == 3

    def test_summary_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_stats([])

    def test_range_ratio_properties(self):
        s = ActivationStats("l", abs_max=10.0, abs_median=0.5, kurtosis=3.0)
        assert s.range_ratio == 20.0
        assert s.median_int8_levels == pytest.approx(127 * 0.05)
        z = ActivationStats("l", abs_max=0.0, abs_median=0.0, kurtosis=0.0)
        assert z.median_int8_levels == 0.0
        assert np.isinf(z.range_ratio)

    def test_heavy_tailed_input_detected(self):
        """A model fed heavy-tailed data shows a larger range ratio."""
        model = tiny_model()
        rng = np.random.default_rng(1)
        gauss = rng.normal(size=(16, 3, 8, 8)).astype(np.float32)
        heavy = (rng.standard_t(df=2, size=(16, 3, 8, 8)) * 2).astype(np.float32)
        s_g = summarize_stats(collect_activation_stats(model, gauss))
        s_h = summarize_stats(collect_activation_stats(model, heavy))
        assert s_h["mean_range_ratio"] > s_g["mean_range_ratio"]
