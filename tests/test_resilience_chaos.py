"""Chaos suite: the table2 grid under injected faults (the PR's acceptance
scenario, run alone via ``scripts/check.sh --chaos``).

Under a worker crash, a worker hang, an artifact truncation mid-write and
a calibration NaN — all armed at once — the grid fill must complete every
unaffected cell, record structured errors for the affected ones, and a
follow-up run with faults disabled must converge to an artifact
byte-identical to a clean serial run.

The zoo is monkeypatched with tiny deterministic models (real
quantization, fake data); tinyA and tinyB use distinct layer names so the
``calib`` fault can target one model's layers only.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.experiments import table2
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.resilience import faults, is_error_entry

pytestmark = pytest.mark.chaos

MODELS = ["tinyA", "tinyB"]
FORMATS = ["MERSIT(8,2)", "Posit(8,1)"]  # run() prepends FP32
# submission order: tinyA/FP32(0) tinyA/MERSIT(1) tinyA/Posit(2)
#                   tinyB/FP32(3) tinyB/MERSIT(4) tinyB/Posit(5)
CHAOS_SPEC = ",".join([
    "cell:tinyA/Posit(8,1):crash",   # cell 2 crashes every attempt
    "worker:3:hang",                 # cell 3's worker hangs every attempt
    "artifact:table2:truncate:1",    # one save dies mid-write
    "calib:b1:nan",                  # tinyB calibration batches pick up NaN
])


class _TinyA(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(11)
        self.a1 = Linear(8, 16, rng=rng)
        self.a2 = Linear(16, 4, rng=rng)

    def forward(self, x):
        return self.a2(self.a1(x).relu())


class _TinyB(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(22)
        self.b1 = Linear(8, 16, rng=rng)
        self.b2 = Linear(16, 4, rng=rng)

    def forward(self, x):
        return self.b2(self.b1(x).relu())


class _Entry:
    kind = "vision"
    metric = "accuracy"


class _Split:
    def __init__(self, n: int):
        rng = np.random.default_rng(n)
        self.x = rng.normal(size=(n, 8)).astype(np.float32)

    def batches(self, batch_size: int):
        return [(self.x[i:i + batch_size],)
                for i in range(0, len(self.x), batch_size)]


class _Data:
    def calibration_split(self, n, seed=0):
        return _Split(n + 1000 * seed)

    def test_split(self, n):
        return _Split(n)


def _fake_pretrained(name: str, memo: bool = False):
    return (_TinyA() if name == "tinyA" else _TinyB()), 0.0


def _fake_evaluate(model, split, *args):
    with no_grad():
        out = model(Tensor(split.x))
    return float(np.sum(np.abs(out.data)))


@pytest.fixture
def tiny_zoo(monkeypatch):
    monkeypatch.setattr(table2, "ALL_MODELS",
                        {"tinyA": _Entry(), "tinyB": _Entry()})
    monkeypatch.setattr(table2, "pretrained", _fake_pretrained)
    monkeypatch.setattr(table2, "dataset", lambda: _Data())
    monkeypatch.setattr(table2, "evaluate_vision", _fake_evaluate)
    monkeypatch.delenv(faults.ENV_VAR, raising=False)


def _run(**kw):
    kw.setdefault("models", MODELS)
    kw.setdefault("formats", FORMATS)
    kw.setdefault("eval_n", 16)
    kw.setdefault("calib_n", 8)
    return table2.run(**kw)


def test_grid_survives_combined_faults_and_converges(tiny_zoo, tmp_path,
                                                     monkeypatch):
    art_dir = tmp_path / "chaos"
    monkeypatch.setenv("REPRO_ARTIFACTS", str(art_dir))
    monkeypatch.setenv(faults.ENV_VAR, CHAOS_SPEC)
    result = _run(refresh=True, jobs=2, cell_timeout=2.0, retries=1,
                  backoff=0.01)
    grid = result["grid"]

    # unaffected cells completed with real scores
    for model, fmt in (("tinyA", "FP32"), ("tinyA", "MERSIT(8,2)")):
        assert isinstance(grid[model][fmt], float), (model, fmt)
    # the crashing cell exhausted its retries
    assert grid["tinyA"]["Posit(8,1)"]["error"]["kind"] == "crash"
    # the hung worker was detected by the per-cell deadline
    assert grid["tinyB"]["FP32"]["error"]["kind"] == "timeout"
    # the NaN'd calibration failed deterministically (no retry burn)
    for fmt in FORMATS:
        entry = grid["tinyB"][fmt]
        assert entry["error"]["kind"] == "numerics", fmt
        assert entry["error"]["attempts"] == 1
        assert "b1" in entry["error"]["message"]

    # despite the mid-write truncation, the persisted artifact is loadable
    from repro.experiments.common import load_artifact
    assert load_artifact("table2") == result

    # follow-up run with faults disabled repairs only the errored cells
    monkeypatch.setenv(faults.ENV_VAR, "")
    repaired = _run(jobs=1)
    assert not any(is_error_entry(v) for row in repaired["grid"].values()
                   for v in row.values())

    # ... and converges byte-identically to a clean serial fill
    clean_dir = tmp_path / "clean"
    monkeypatch.setenv("REPRO_ARTIFACTS", str(clean_dir))
    _run(refresh=True, jobs=1)
    assert (art_dir / "table2.json").read_bytes() == \
        (clean_dir / "table2.json").read_bytes()


def test_storm_rerun_repairs_on_same_persistent_pool(tiny_zoo, tmp_path,
                                                     monkeypatch):
    from repro.resilience import executor
    art_dir = tmp_path / "storm"
    monkeypatch.setenv("REPRO_ARTIFACTS", str(art_dir))
    monkeypatch.setenv(faults.ENV_VAR, "cell:tinyA/Posit(8,1):crash")
    first = _run(refresh=True, jobs=2, retries=0, backoff=0.01)
    assert is_error_entry(first["grid"]["tinyA"]["Posit(8,1)"])
    pids = set(executor.last_run_stats["worker_pids"])
    # an in-worker exception is a structured failure, not a dead worker
    assert executor.last_run_stats["respawns"] == 0

    # disarm the fault and repair on the SAME pool: every dispatch ships
    # the parent's current fault env, so persistent workers see the change
    monkeypatch.setenv(faults.ENV_VAR, "")
    repaired = _run(jobs=2)
    stats = executor.last_run_stats
    assert stats["pool_reused"] is True
    assert set(stats["worker_pids"]) <= pids
    assert not any(is_error_entry(v) for row in repaired["grid"].values()
                   for v in row.values())

    clean_dir = tmp_path / "clean"
    monkeypatch.setenv("REPRO_ARTIFACTS", str(clean_dir))
    _run(refresh=True, jobs=1)
    assert (art_dir / "table2.json").read_bytes() == \
        (clean_dir / "table2.json").read_bytes()


def test_interrupted_run_resumes_byte_identically(tiny_zoo, tmp_path,
                                                  monkeypatch):
    art_dir = tmp_path / "interrupted"
    monkeypatch.setenv("REPRO_ARTIFACTS", str(art_dir))
    real_save = table2.save_artifact
    calls = {"n": 0}

    def interrupting_save(name, payload):
        path = real_save(name, payload)
        calls["n"] += 1
        if calls["n"] == 3:
            raise KeyboardInterrupt  # ctrl-C right after the third commit
        return path

    monkeypatch.setattr(table2, "save_artifact", interrupting_save)
    with pytest.raises(KeyboardInterrupt):
        _run(refresh=True, jobs=1)

    # the interrupted run left a loadable artifact with the committed cells
    monkeypatch.setattr(table2, "save_artifact", real_save)
    from repro.experiments.common import load_artifact
    partial = load_artifact("table2")
    assert partial is not None
    n_cells = sum(len(row) for row in partial["grid"].values())
    assert n_cells == 3

    # resuming computes only the remaining cells ...
    seen = []
    real_cell = table2._eval_cell

    def counting_cell(name, fmt, *a):
        seen.append((name, fmt))
        return real_cell(name, fmt, *a)

    monkeypatch.setattr(table2, "_eval_cell", counting_cell)
    _run(jobs=1)
    assert len(seen) == 3

    # ... and the converged artifact is byte-identical to a clean run
    clean_dir = tmp_path / "clean"
    monkeypatch.setenv("REPRO_ARTIFACTS", str(clean_dir))
    _run(refresh=True, jobs=1)
    assert (art_dir / "table2.json").read_bytes() == \
        (clean_dir / "table2.json").read_bytes()


def test_interrupted_pool_run_resumes(tiny_zoo, tmp_path, monkeypatch):
    # same contract on the pool path: commits run in the parent, so an
    # interrupt between commits still leaves a loadable artifact
    art_dir = tmp_path / "pool"
    monkeypatch.setenv("REPRO_ARTIFACTS", str(art_dir))
    real_save = table2.save_artifact
    calls = {"n": 0}

    def interrupting_save(name, payload):
        path = real_save(name, payload)
        calls["n"] += 1
        if calls["n"] == 2:
            raise KeyboardInterrupt
        return path

    monkeypatch.setattr(table2, "save_artifact", interrupting_save)
    with pytest.raises(KeyboardInterrupt):
        _run(refresh=True, jobs=2)
    monkeypatch.setattr(table2, "save_artifact", real_save)

    from repro.experiments.common import load_artifact
    assert load_artifact("table2") is not None
    repaired = _run(jobs=1)
    assert sum(len(r) for r in repaired["grid"].values()) == 6
    assert not any(is_error_entry(v) for row in repaired["grid"].values()
                   for v in row.values())
