"""Error and GLUE metrics."""

import numpy as np
import pytest

from repro.quant.metrics import (
    accuracy, f1_score, matthews_corrcoef, relative_rmse, rmse, sqnr_db,
)


class TestRmse:
    def test_zero_for_identical(self):
        x = np.arange(10.0)
        assert rmse(x, x) == 0.0

    def test_known_value(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(
            np.sqrt(12.5))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(3), np.zeros(4))

    def test_relative_normalisation(self):
        x = np.array([10.0, 10.0])
        q = np.array([9.0, 11.0])
        assert relative_rmse(x, q) == pytest.approx(0.1)

    def test_relative_zero_reference(self):
        assert relative_rmse(np.zeros(4), np.zeros(4)) == 0.0

    def test_scale_invariance_of_relative(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=100)
        q = x + rng.normal(size=100) * 0.01
        assert relative_rmse(x, q) == pytest.approx(relative_rmse(10 * x, 10 * q))


class TestSqnr:
    def test_inf_for_exact(self):
        x = np.ones(5)
        assert sqnr_db(x, x) == np.inf

    def test_10db_per_decade(self):
        x = np.ones(1000)
        q1 = x + 0.01
        q2 = x + 0.1
        assert sqnr_db(x, q1) - sqnr_db(x, q2) == pytest.approx(20.0, abs=0.1)


class TestGlueMetrics:
    def test_accuracy_percent(self):
        assert accuracy(np.array([1, 0, 1, 1]), np.array([1, 0, 0, 1])) == 75.0

    def test_accuracy_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_f1_perfect(self):
        y = np.array([1, 0, 1, 1, 0])
        assert f1_score(y, y) == 100.0

    def test_f1_no_positives_predicted(self):
        assert f1_score(np.array([1, 1, 0]), np.array([0, 0, 0])) == 0.0

    def test_f1_known_value(self):
        y_true = np.array([1, 1, 0, 0])
        y_pred = np.array([1, 0, 1, 0])
        # precision 0.5, recall 0.5 -> F1 50
        assert f1_score(y_true, y_pred) == pytest.approx(50.0)

    def test_matthews_perfect_and_inverted(self):
        y = np.array([1, 0, 1, 0, 1])
        assert matthews_corrcoef(y, y) == pytest.approx(100.0)
        assert matthews_corrcoef(y, 1 - y) == pytest.approx(-100.0)

    def test_matthews_constant_prediction_is_zero(self):
        y = np.array([1, 0, 1, 0])
        assert matthews_corrcoef(y, np.ones(4, dtype=int)) == 0.0

    def test_matthews_against_scipy(self):
        from scipy.stats import pearsonr
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 2, 200)
        y_pred = (y_true + (rng.random(200) < 0.3)) % 2
        got = matthews_corrcoef(y_true, y_pred) / 100.0
        want = pearsonr(y_true, y_pred).statistic
        assert got == pytest.approx(want, abs=1e-9)
