"""Gateway basics: wire codec, ops, admission, deadline propagation.

The fast half of the gateway suite: everything here runs against either
pure functions (:mod:`repro.serve.wire`) or a single in-process
:class:`InferenceService` behind a real localhost socket — no shard
processes, no chaos.  The headline check extends the repo's bit-identity
guarantee across the wire: a reply decoded from the TCP frame is
byte-equal to ``infer_serial`` on the same service.
"""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.resilience import faults
from repro.serve import (
    BadRequestError, DeadlineExceededError, GatewayTimeoutError,
    Gateway, GatewayClient, InferenceService, ModelRepository,
    OverloadedError, ServeError, micro_specs,
)
from repro.serve import wire

pytestmark = [pytest.mark.net, pytest.mark.serve]


@pytest.fixture(autouse=True)
def _disarm(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    yield
    monkeypatch.delenv(faults.ENV_VAR, raising=False)


# ---------------------------------------------------------------------------
# wire codec
# ---------------------------------------------------------------------------

def test_wire_roundtrip_is_bit_exact_for_arrays():
    rng = np.random.default_rng(0)
    msg = {
        "op": "infer",
        "f32": rng.standard_normal((3, 5)).astype(np.float32),
        "i8": rng.integers(-128, 127, 16, dtype=np.int8),
        "tuple": (rng.integers(0, 9, 4, dtype=np.int64),
                  np.ones(4, dtype=np.float32)),
        "nested": {"list": [np.float32(1.5), "text", 7]},
    }
    out = wire.unpack_frame(wire.pack_frame(msg)[4:])
    assert out["op"] == "infer"
    assert out["f32"].tobytes() == msg["f32"].tobytes()
    assert out["f32"].dtype == np.float32 and out["f32"].shape == (3, 5)
    assert out["i8"].tobytes() == msg["i8"].tobytes()
    assert isinstance(out["tuple"], tuple)
    assert out["tuple"][0].tobytes() == msg["tuple"][0].tobytes()
    # np scalars come back as 0-d arrays with the same bytes
    assert np.asarray(out["nested"]["list"][0]).tobytes() == \
        np.float32(1.5).tobytes()
    assert out["nested"]["list"][1:] == ["text", 7]


def test_wire_rejects_corrupt_and_oversized_frames():
    frame = wire.pack_frame({"op": "x"})
    with pytest.raises(wire.FrameError):
        wire.unpack_frame(wire.garble(frame[4:]))
    with pytest.raises(wire.FrameError):
        wire.unpack_frame(b"[1, 2, 3]")       # valid JSON, not an object
    with pytest.raises(wire.FrameError):
        wire.frame_length((wire.MAX_FRAME + 1).to_bytes(4, "big"))


def test_garble_changes_bytes_but_not_length():
    payload = wire.pack_frame({"op": "infer", "id": 3})[4:]
    bad = wire.garble(payload)
    assert len(bad) == len(payload) and bad != payload


# ---------------------------------------------------------------------------
# stub service: deterministic control over completion timing
# ---------------------------------------------------------------------------

class _StubRepo:
    specs = {"stub": object()}

    def model_key(self, model, fmt, mode):
        return f"{model}|{fmt}|{mode}"


class _StubService:
    """Service double whose futures complete only when the test says so."""

    def __init__(self):
        self.repository = _StubRepo()
        self.gate = threading.Event()
        self.submitted = 0

    def submit(self, model, inputs, fmt, mode, deadline_ms=None):
        self.submitted += 1
        fut = Future()

        def run():
            if self.gate.wait(30):
                fut.set_result(np.zeros(1, np.float32))

        threading.Thread(target=run, daemon=True).start()
        return fut

    def stats(self):
        return {"stub": True}

    def render_stats(self):
        return "stub service"

    def close(self, drain=True):
        self.gate.set()


# ---------------------------------------------------------------------------
# gateway ops over a real socket
# ---------------------------------------------------------------------------

def _service():
    return InferenceService(ModelRepository(micro_specs(), calib_n=8))


def test_infer_over_socket_is_bit_identical_to_serial():
    svc = _service()
    with Gateway(svc, port=0).start() as gw, \
            GatewayClient(gw.host, gw.port, seed=0) as client:
        xs = micro_specs()["micro-mlp"].requests(3, seed=5)
        for x in xs:
            got = client.infer("micro-mlp", x)
            ref = svc.infer_serial("micro-mlp", x)
            assert got.tobytes() == ref.tobytes()
            assert got.dtype == ref.dtype and got.shape == ref.shape


def test_stats_and_health_ops():
    with Gateway(_service(), port=0).start() as gw, \
            GatewayClient(gw.host, gw.port, seed=1) as client:
        x = micro_specs()["micro-mlp"].requests(1, seed=0)[0]
        client.infer("micro-mlp", x)
        stats = client.stats()
        assert stats["gateway"]["counters"]["infer_ok"] == 1
        assert "micro-mlp|MERSIT(8,2)|fakequant" in stats["breakers"]
        assert stats["service"]["metrics"]["completed"] == 1
        health = client.health()
        assert health["state"] in ("ready", "degraded")
        rendered = gw.render_stats()
        assert "gateway" in rendered and "serve metrics" in rendered


def test_bad_requests_are_structured():
    with Gateway(_service(), port=0).start() as gw:
        with GatewayClient(gw.host, gw.port, seed=2) as client:
            x = micro_specs()["micro-mlp"].requests(1, seed=0)[0]
            with pytest.raises(BadRequestError):
                client.infer("no-such-model", x)
            with pytest.raises(BadRequestError):
                client.infer("micro-mlp", x, fmt="NOT-A-FORMAT(9,9)")
            with pytest.raises(ServeError):
                client._call({"op": "teleport"}, retryable=False)


def test_overload_sheds_with_structured_error():
    """max_inflight=1: a second concurrent request is shed, not queued."""
    stub = _StubService()
    with Gateway(stub, port=0, max_inflight=1).start() as gw:
        first_done = []

        def first():
            with GatewayClient(gw.host, gw.port, seed=3) as c:
                first_done.append(c.infer("stub", np.zeros(1, np.float32)))

        t = threading.Thread(target=first)
        t.start()
        deadline = time.monotonic() + 10
        while gw.stats()["gateway"]["inflight"] < 1:
            assert time.monotonic() < deadline, "first request never admitted"
            time.sleep(0.01)
        with GatewayClient(gw.host, gw.port, seed=4, retries=0) as c2:
            with pytest.raises(OverloadedError):
                c2.infer("stub", np.zeros(1, np.float32))
        stub.gate.set()
        t.join(timeout=10)
        assert first_done, "the admitted request must still complete"
        assert gw.stats()["gateway"]["errors"]["overloaded"] == 1


def test_overloaded_is_retryable_and_succeeds_after_window_frees():
    stub = _StubService()
    with Gateway(stub, port=0, max_inflight=1).start() as gw:
        t = threading.Thread(
            target=lambda: GatewayClient(gw.host, gw.port, seed=5).infer(
                "stub", np.zeros(1, np.float32)))
        t.start()
        deadline = time.monotonic() + 10
        while gw.stats()["gateway"]["inflight"] < 1:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        # free the window shortly after the retrying client's first shed
        threading.Timer(0.2, stub.gate.set).start()
        with GatewayClient(gw.host, gw.port, seed=6, retries=8) as c2:
            out = c2.infer("stub", np.zeros(1, np.float32))
        assert out.shape == (1,)
        assert c2.retried >= 1, "success must have come through a retry"
        t.join(timeout=10)


def test_gateway_timeout_backstop_is_structured():
    stub = _StubService()   # never completes until closed
    with Gateway(stub, port=0, request_timeout_s=0.3).start() as gw:
        with GatewayClient(gw.host, gw.port, seed=7, retries=0) as client:
            with pytest.raises(GatewayTimeoutError):
                client.infer("stub", np.zeros(1, np.float32))


def test_deadline_eaten_in_transit_fails_without_executing(monkeypatch):
    """An inbound delay fault longer than the budget must surface as a
    deadline error *without* the request ever reaching the service."""
    monkeypatch.setenv(faults.ENV_VAR, "net:frame/infer:delay:1")
    stub = _StubService()
    stub.gate.set()   # the service would answer instantly if asked
    with Gateway(stub, port=0).start() as gw:
        with GatewayClient(gw.host, gw.port, seed=8, retries=0) as client:
            with pytest.raises(DeadlineExceededError):
                client.infer("stub", np.zeros(1, np.float32),
                             deadline_ms=faults.NET_DELAY_SECONDS * 500)
        assert stub.submitted == 0, \
            "an in-transit-expired request must never execute"


def test_client_total_deadline_covers_retries(monkeypatch):
    """Reply drops burn the budget; the client gives up with a deadline
    error instead of retrying forever."""
    monkeypatch.setenv(faults.ENV_VAR, "net:reply/infer:drop:10")
    svc = _service()
    with Gateway(svc, port=0).start() as gw:
        with GatewayClient(gw.host, gw.port, seed=9, retries=10,
                           io_timeout_s=0.3) as client:
            x = micro_specs()["micro-mlp"].requests(1, seed=1)[0]
            t0 = time.monotonic()
            with pytest.raises(DeadlineExceededError):
                client.infer("micro-mlp", x, deadline_ms=1000)
            assert time.monotonic() - t0 < 10, "deadline must bound retries"
