"""Resilient grid executor: retry, timeout, degradation, commit order.

Pool-path workers must be module-level (pickled by reference into fork
children); flaky behaviour is coordinated through marker files in a
tmpdir carried inside the task tuple, so attempt counts are visible
across worker processes.
"""

import time
from pathlib import Path

import pytest

from repro.resilience import error_entry, is_error_entry, run_cells
from repro.resilience import faults
from repro.resilience.numerics import NumericsError


def _ok_worker(task):
    return task * 10


def _flaky_worker(task):
    """Fail the first ``fail_times`` attempts of cell ``i``, then succeed."""
    d, i, fail_times = task
    marker = Path(d) / f"{i}.attempts"
    n = int(marker.read_text()) if marker.exists() else 0
    marker.write_text(str(n + 1))
    if n < fail_times:
        raise RuntimeError(f"transient failure {i} attempt {n}")
    return i * 10


def _numerics_worker(task):
    if task == 2:
        raise NumericsError("bad scale", layer="fc1", observer="max",
                            stat="scale")
    return task * 10


def _slow_worker(task):
    time.sleep(task * 0.05)
    return task


@pytest.fixture(autouse=True)
def no_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)


class TestErrorEntry:
    def test_shape(self):
        e = error_entry("crash", "boom", 3)
        assert e == {"error": {"kind": "crash", "message": "boom",
                               "attempts": 3}}

    def test_is_error_entry(self):
        assert is_error_entry(error_entry("timeout", "m", 1))
        assert not is_error_entry(73.2)
        assert not is_error_entry({"grid": {}})


class TestSerial:
    def test_results_in_task_order(self):
        assert run_cells([3, 1, 2], _ok_worker) == [30, 10, 20]

    def test_commit_called_in_order(self):
        commits = []
        run_cells([0, 1, 2], _ok_worker,
                  commit=lambda i, v: commits.append((i, v)))
        assert commits == [(0, 0), (1, 10), (2, 20)]

    def test_transient_failure_retried(self, tmp_path):
        tasks = [(str(tmp_path), 0, 0), (str(tmp_path), 1, 1)]
        out = run_cells(tasks, _flaky_worker, retries=1, sleep=lambda s: None)
        assert out == [0, 10]

    def test_exhausted_retries_degrade(self, tmp_path):
        tasks = [(str(tmp_path), 0, 99), (str(tmp_path), 1, 0)]
        out = run_cells(tasks, _flaky_worker, retries=2, sleep=lambda s: None)
        assert is_error_entry(out[0])
        assert out[0]["error"]["kind"] == "crash"
        assert out[0]["error"]["attempts"] == 3  # 1 try + 2 retries
        assert "transient failure" in out[0]["error"]["message"]
        assert out[1] == 10  # the rest of the grid completed

    def test_backoff_doubles_and_caps(self, tmp_path):
        delays = []
        tasks = [(str(tmp_path), 0, 99)]
        run_cells(tasks, _flaky_worker, retries=4, backoff=1.0,
                  backoff_cap=3.0, sleep=delays.append)
        assert delays == [1.0, 2.0, 3.0, 3.0]

    def test_numerics_error_not_retried(self, tmp_path):
        out = run_cells([0, 1, 2, 3], _numerics_worker, retries=5,
                        sleep=lambda s: None)
        assert out[0] == 0 and out[3] == 30
        assert out[2]["error"]["kind"] == "numerics"
        assert out[2]["error"]["attempts"] == 1
        assert "layer=fc1" in out[2]["error"]["message"]

    def test_keyboard_interrupt_propagates_after_commits(self):
        commits = []

        def ki_worker(task):
            if task == 2:
                raise KeyboardInterrupt
            return task

        with pytest.raises(KeyboardInterrupt):
            run_cells([0, 1, 2, 3], ki_worker,
                      commit=lambda i, v: commits.append(i))
        assert commits == [0, 1]  # everything before the interrupt persisted


class TestPool:
    def test_matches_serial(self):
        tasks = list(range(8))
        assert run_cells(tasks, _ok_worker, jobs=3) == \
            run_cells(tasks, _ok_worker)

    def test_commit_order_despite_completion_order(self):
        # task 7 sleeps longest; commits must still arrive 0..7
        commits = []
        out = run_cells(list(range(8)), _slow_worker, jobs=4,
                        commit=lambda i, v: commits.append(i))
        assert out == list(range(8))
        assert commits == list(range(8))

    def test_transient_failure_retried_across_waves(self, tmp_path):
        tasks = [(str(tmp_path), i, 1 if i == 2 else 0) for i in range(4)]
        out = run_cells(tasks, _flaky_worker, jobs=2, retries=1,
                        sleep=lambda s: None)
        assert out == [0, 10, 20, 30]

    def test_exhausted_retries_degrade(self, tmp_path):
        tasks = [(str(tmp_path), i, 99 if i == 1 else 0) for i in range(4)]
        out = run_cells(tasks, _flaky_worker, jobs=2, retries=1,
                        sleep=lambda s: None)
        assert out[1]["error"]["kind"] == "crash"
        assert [out[0], out[2], out[3]] == [0, 20, 30]

    def test_numerics_error_immediate(self):
        out = run_cells([0, 1, 2, 3], _numerics_worker, jobs=2, retries=5,
                        sleep=lambda s: None)
        assert out[2]["error"]["kind"] == "numerics"
        assert out[2]["error"]["attempts"] == 1

    def test_hung_worker_detected_and_cell_errored(self, monkeypatch):
        # worker 1 hangs (via injected fault) on its only attempt budget;
        # the timeout frees the wave and the cell degrades to an error
        monkeypatch.setenv(faults.ENV_VAR, "worker:1:hang")
        t0 = time.monotonic()
        out = run_cells(list(range(4)), _ok_worker, jobs=2, timeout=1.0,
                        retries=1, sleep=lambda s: None)
        assert time.monotonic() - t0 < 30.0  # did not wait HANG_SECONDS
        assert out[1]["error"]["kind"] == "timeout"
        assert "hung or killed" in out[1]["error"]["message"]
        assert [out[0], out[2], out[3]] == [0, 20, 30]

    def test_hung_worker_recovers_when_transient(self, monkeypatch):
        # the hang fires once; the retry wave recomputes the cell cleanly
        monkeypatch.setenv(faults.ENV_VAR, "worker:2:hang:1")
        out = run_cells(list(range(4)), _ok_worker, jobs=2, timeout=1.0,
                        retries=1, sleep=lambda s: None)
        assert out == [0, 10, 20, 30]

    def test_killed_worker_recovers(self, monkeypatch):
        # kill hard-exits the child mid-task (SIGKILL analogue): the pool
        # loses the result, the timeout flags it, the retry succeeds
        monkeypatch.setenv(faults.ENV_VAR, "worker:0:kill:1")
        out = run_cells(list(range(3)), _ok_worker, jobs=2, timeout=5.0,
                        retries=1, sleep=lambda s: None)
        assert out == [0, 10, 20]

    def test_crash_fault_in_worker_scope(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "worker:1:crash")
        out = run_cells(list(range(3)), _ok_worker, jobs=2, retries=1,
                        sleep=lambda s: None)
        assert out[1]["error"]["kind"] == "crash"
        assert "FaultInjected" in out[1]["error"]["message"]
        assert [out[0], out[2]] == [0, 20]
