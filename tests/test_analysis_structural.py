"""Structural verifier: synthetic netlists with planted defects.

Each test builds a small circuit with exactly one planted structural
problem — a combinational loop, a floating wire, a double-driven wire,
dead logic — and asserts the verifier reports exactly that diagnostic.
"""

import pytest

from repro.analysis import verify_circuit
from repro.analysis.structural import (
    check_arity,
    find_combinational_loops,
    find_dead_logic,
    find_multiply_driven,
    find_undriven_nets,
)
from repro.hardware.netlist import Bus, Circuit


def _clean_circuit() -> Circuit:
    """A tiny well-formed reference circuit: q = (a & b) ^ ~a."""
    c = Circuit("clean")
    a, b = c.input_bus(2)
    c.set_output("q", [c.xor2(c.and2(a, b), c.inv(a))])
    return c


def rules(diags):
    return sorted(d.rule for d in diags)


class TestCleanCircuit:
    def test_no_diagnostics(self):
        assert verify_circuit(_clean_circuit()) == []

    def test_real_decoder_is_clean(self):
        from repro.hardware.variants import decoder_circuit
        assert verify_circuit(decoder_circuit("MERSIT(8,2)")) == []


class TestCombinationalLoop:
    def _looped_circuit(self) -> Circuit:
        # q = a & loop; loop = ~q  — a 2-gate combinational cycle
        c = Circuit("looped")
        (a,) = c.input_bus(1)
        loop_net = c.new_net()
        q = c.and2(a, loop_net)
        inv = c.inv(q)
        # rewire the INV gate output onto the forward-declared net
        c.gates[-1].output = loop_net
        c.set_output("q", [q])
        assert inv != loop_net  # the planted rewire really happened
        return c

    def test_planted_loop_detected(self):
        diags = find_combinational_loops(self._looped_circuit())
        assert len(diags) == 1
        d = diags[0]
        assert d.rule == "combinational-loop" and d.severity == "error"
        assert len(d.data["nets"]) == 2

    def test_loop_reported_once(self):
        # the cycle is reachable from both member gates; one report only
        c = self._looped_circuit()
        assert len(verify_circuit(c)) == 1

    def test_dff_breaks_the_path(self):
        # same feedback shape, but through a DFF: legal sequential loop
        c = Circuit("counter")
        (en,) = c.input_bus(1)
        state = c.new_net()
        nxt = c.xor2(en, state)
        q = c.dff(nxt)
        c.gates[-1].output = state
        c._dffs[-1].output = state
        c.set_output("q", [state])
        assert q != state
        assert find_combinational_loops(c) == []

    def test_self_loop(self):
        c = Circuit("self")
        (a,) = c.input_bus(1)
        fb = c.new_net()
        c.and2(a, fb)
        c.gates[-1].output = fb
        c.set_output("q", [fb])
        diags = find_combinational_loops(c)
        assert rules(diags) == ["combinational-loop"]
        assert diags[0].data["nets"] == [fb]


class TestUndrivenNet:
    def test_floating_gate_input(self):
        c = Circuit("floating")
        (a,) = c.input_bus(1)
        ghost = c.new_net()  # allocated but never driven
        c.set_output("q", [c.and2(a, ghost)])
        diags = find_undriven_nets(c)
        assert rules(diags) == ["undriven-net"]
        assert diags[0].data["net"] == ghost
        assert "input of AND2" in diags[0].message

    def test_floating_output_bit(self):
        c = Circuit("floating_out")
        (a,) = c.input_bus(1)
        ghost = c.new_net()
        c.set_output("q", Bus([c.inv(a), ghost]))
        diags = find_undriven_nets(c)
        assert rules(diags) == ["undriven-net"]
        assert "output" in diags[0].message

    def test_constants_and_inputs_are_driven(self):
        c = Circuit("consts")
        (a,) = c.input_bus(1)
        c.set_output("q", [c.and2(a, c.ONE), c.ZERO, a])
        assert find_undriven_nets(c) == []


class TestMultiplyDrivenNet:
    def test_double_driver(self):
        c = Circuit("short")
        a, b = c.input_bus(2)
        q1 = c.and2(a, b)
        c.or2(a, b)
        c.gates[-1].output = q1  # short the OR output onto the AND output
        c.set_output("q", [q1])
        diags = find_multiply_driven(c)
        assert rules(diags) == ["multiply-driven-net"]
        assert diags[0].data == {"net": q1, "drivers": 2}

    def test_driving_a_constant_net(self):
        c = Circuit("const_drive")
        (a,) = c.input_bus(1)
        c.inv(a)
        c.gates[-1].output = c.ONE
        c.set_output("q", [c.ONE])
        diags = find_multiply_driven(c)
        assert rules(diags) == ["multiply-driven-net"]
        assert "constant" in diags[0].message

    def test_driving_a_primary_input(self):
        c = Circuit("input_drive")
        a, b = c.input_bus(2)
        c.and2(a, b)
        c.gates[-1].output = b
        c.set_output("q", [b])
        diags = find_multiply_driven(c)
        assert rules(diags) == ["multiply-driven-net"]
        assert "primary input" in diags[0].message


class TestArity:
    def test_port_arity_mismatch(self):
        c = _clean_circuit()
        c.gates[0].inputs = c.gates[0].inputs[:1]  # AND2 with one input
        diags = check_arity(c)
        assert rules(diags) == ["port-arity"]

    def test_net_out_of_range(self):
        c = _clean_circuit()
        c.gates[0].inputs = (c.gates[0].inputs[0], 10_000)
        assert "net-out-of-range" in rules(check_arity(c))

    def test_empty_output_bus(self):
        c = _clean_circuit()
        c.set_output("empty", [])
        assert rules(check_arity(c)) == ["empty-output-bus"]


class TestDeadLogic:
    def _with_dead_gate(self) -> Circuit:
        c = Circuit("dead")
        a, b = c.input_bus(2)
        c.set_output("q", [c.and2(a, b)])
        c.xor2(a, b)  # result never observed
        return c

    def test_planted_dead_gate_reported(self):
        c = self._with_dead_gate()
        diags = find_dead_logic(c)
        assert rules(diags) == ["dead-logic"]
        assert diags[0].severity == "warning"
        assert diags[0].data["count"] == 1

    def test_prune_removes_exactly_the_dead_gate(self):
        c = self._with_dead_gate()
        assert c.prune_dead() == 1
        assert len(c.gates) == 1
        assert find_dead_logic(c) == []

    def test_dff_is_always_live(self):
        c = Circuit("reg")
        (d,) = c.input_bus(1)
        c.dff(c.inv(d))  # register chain with unobserved Q
        c.set_output("q", [d])
        assert find_dead_logic(c) == []
        assert c.prune_dead() == 0

    def test_prune_preserves_simulation(self):
        import numpy as np
        from repro.hardware.variants import decoder_circuit
        pruned = decoder_circuit("MERSIT(8,2)", prune=True)
        full = decoder_circuit("MERSIT(8,2)", prune=False)
        stim = np.unpackbits(
            np.arange(256, dtype=np.uint8)[:, None], axis=1,
            bitorder="little").astype(bool)
        out_f = full.simulate(stim)["outputs"]
        out_p = pruned.simulate(stim)["outputs"]
        for name in out_f:
            np.testing.assert_array_equal(out_f[name], out_p[name])


class TestVerifyCircuit:
    def test_multiple_defects_all_reported(self):
        c = Circuit("multi")
        (a,) = c.input_bus(1)
        ghost = c.new_net()
        q1 = c.and2(a, ghost)
        c.inv(a)
        c.gates[-1].output = q1
        c.set_output("q", [q1])
        got = rules(verify_circuit(c))
        assert "undriven-net" in got and "multiply-driven-net" in got

    def test_dead_logic_skipped_when_graph_broken(self):
        # a broken graph must not run the cone-of-influence pass
        c = Circuit("broken")
        (a,) = c.input_bus(1)
        fb = c.new_net()
        c.and2(a, fb)
        c.gates[-1].output = fb
        c.xor2(a, a)  # would be dead, but the loop error takes precedence
        c.set_output("q", [fb])
        got = rules(verify_circuit(c))
        assert "combinational-loop" in got and "dead-logic" not in got

    def test_diagnostic_render_shape(self):
        c = self_test = Circuit("shape")
        (a,) = c.input_bus(1)
        ghost = c.new_net()
        c.set_output("q", [c.and2(a, ghost)])
        (d,) = verify_circuit(self_test, "planted")
        assert d.render() == f"planted: error[undriven-net] {d.message}"
        assert d.to_dict()["where"] == "planted"
