"""Smoke test: benchmarks/bench_serve.py runs and emits valid JSON."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH = REPO_ROOT / "benchmarks" / "bench_serve.py"

pytestmark = [pytest.mark.serve, pytest.mark.shard]


def test_bench_serve_fast_mode(tmp_path):
    out = tmp_path / "BENCH_serve.json"
    proc = subprocess.run(
        [sys.executable, str(BENCH), "--fast", "--out", str(out)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(out.read_text())
    assert "host" in payload and payload["model"] == "micro-cnn"
    assert payload["serial"]["throughput_rps"] > 0
    for n in ("1", "8", "32"):
        b = payload["batched"][n]
        assert b["ok"] == b["requests"]
        assert b["throughput_rps"] > 0
        assert 1.0 <= b["mean_batch_size"] <= int(n)
    assert payload["speedup_batch32_x"] > 0
    assert "speedup" in proc.stdout
    for n, s in payload["sharded"].items():
        assert int(n) >= 2, "the shard axis must measure a real fan-out"
        for loop in ("closed_loop", "open_loop"):
            assert s[loop]["ok"] == s[loop]["requests"]
            assert s[loop]["throughput_rps"] > 0
        assert s["fleet"]["percentiles_exact"] is True
        assert isinstance(s["cpu_limited"], bool)


def test_committed_benchmark_meets_the_batching_bar():
    """The committed BENCH_serve.json must show the >=3x batch-32 win."""
    committed = REPO_ROOT / "BENCH_serve.json"
    payload = json.loads(committed.read_text())
    assert set(payload["batched"]) == {"1", "8", "32"}
    for n in ("1", "8", "32"):
        assert payload["batched"][n]["throughput_rps"] > 0
        assert payload["batched"][n]["latency_ms"]["p50"] >= 0
    assert payload["speedup_batch32_x"] >= 3.0
    # the shard axis rides along; a cpu-limited host must say so rather
    # than let its numbers masquerade as a scaling measurement
    for s in payload["sharded"].values():
        assert s["closed_loop"]["ok"] == s["closed_loop"]["requests"]
        assert isinstance(s["cpu_limited"], bool)
