"""Thread-safety of the serving hot paths.

Covers the ``quantize_cached`` memo under concurrent workers (including
the snapshot-before-read TOCTOU regression), weight rebinds mid-traffic
through a live service, and a chaos-marked fault storm (worker crashes,
model-load crashes, calibration NaN, queue overflow) that the service
must survive with structured errors and bit-exact post-storm results.
"""

import threading

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.formats import get_format
from repro.quant.fakequant import FakeQuantizer
from repro.serve import (
    BatchPolicy, InferenceService, ModelLoadError, ModelRepository,
    QueueFullError, ServeError, WorkerCrashError, micro_specs,
)

pytestmark = pytest.mark.serve

FMT = get_format("MERSIT(8,2)")


# ----------------------------------------------------------------------
# quantize_cached under concurrency
# ----------------------------------------------------------------------

def test_quantize_cached_concurrent_rebind_never_serves_a_stale_mix():
    """Hammered from many threads while the weight is rebound: every
    returned plane must be the full quantization of *some* version of
    the weight, never a stale plane attributed to a fresh version."""
    rng = np.random.default_rng(0)
    planes_by_version = {}
    weight = Tensor(rng.normal(size=(24, 24)))
    q = FakeQuantizer(FMT, axis=0)
    q.calibrate(weight.data)
    # precompute the valid plane per version the rebinder will install
    datas = [rng.normal(size=(24, 24)) for _ in range(6)]
    valid = {0: q(weight.data).astype(np.float32)}

    stop = threading.Event()
    bad = []

    def hammer():
        while not stop.is_set():
            out = q.quantize_cached(weight)
            if not any(np.array_equal(out, v) for v in valid.values()):
                bad.append(out)
                return

    threads = [threading.Thread(target=hammer) for _ in range(6)]
    for t in threads:
        t.start()
    for i, d in enumerate(datas, start=1):
        valid[i] = q(d).astype(np.float32)  # register before it's visible
        weight.data = d                     # setter bumps the version
    stop.set()
    for t in threads:
        t.join()
    assert not bad, "quantize_cached returned a plane matching no version"
    # once quiet, the cache must converge on the final plane
    np.testing.assert_array_equal(q.quantize_cached(weight),
                                  valid[len(datas)])


def test_quantize_cached_toctou_regression():
    """A rebind racing *inside* the computation must not pin the stale
    plane under the fresh version (versions are snapshotted before the
    data is read; storing them post-compute caused exactly that)."""
    weight = Tensor(np.linspace(-1.0, 1.0, 32).reshape(4, 8))
    new_data = np.linspace(-2.0, 2.0, 32).reshape(4, 8)

    class RacingQuantizer(FakeQuantizer):
        armed = False

        def __call__(self, x):
            out = super().__call__(x)
            if self.armed:
                self.armed = False
                weight.data = new_data  # the mid-compute rebind
            return out

    q = RacingQuantizer(FMT, axis=0)
    q.calibrate(np.full(4, 2.0))
    q.armed = True
    stale = q.quantize_cached(weight)  # computed from the old data
    np.testing.assert_array_equal(stale, q(np.linspace(-1.0, 1.0, 32)
                                           .reshape(4, 8)).astype(np.float32))
    # the racing rebind bumped the version, so the memo must recompute
    fresh = q.quantize_cached(weight)
    np.testing.assert_array_equal(fresh, q(new_data).astype(np.float32))


def test_quantize_cached_recalibration_invalidates_under_threads():
    weight = Tensor(np.random.default_rng(1).normal(size=(16, 16)))
    q = FakeQuantizer(FMT, axis=0)
    q.calibrate(weight.data)
    first = q.quantize_cached(weight)
    results = []

    def worker():
        results.append(q.quantize_cached(weight))

    q.calibrate(weight.data * 0.5)  # scale setter bumps the scale version
    after = q(weight.data).astype(np.float32)
    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for out in results:
        assert (np.array_equal(out, after)
                or np.array_equal(out, first))  # never a third thing
    np.testing.assert_array_equal(q.quantize_cached(weight), after)


# ----------------------------------------------------------------------
# weight rebind through a live service
# ----------------------------------------------------------------------

def test_weight_rebind_mid_traffic_no_stale_plane_reads(tmp_path):
    repo = ModelRepository(micro_specs(), calib_n=8, persist=False)
    policy = BatchPolicy(max_batch=4, max_wait_ms=2.0, workers=2)
    spec = micro_specs()["micro-mlp"]
    reqs = spec.requests(8, seed=9)
    with InferenceService(repo, policy) as svc:
        before = [svc.infer(("micro-mlp"), x) for x in reqs]
        net, _ = repo.resolve("micro-mlp", "MERSIT(8,2)")
        # rebind every quantized weight mid-traffic and recalibrate
        from repro.quant.ptq import quantized_layers
        rng = np.random.default_rng(4)
        for _name, layer in quantized_layers(net):
            layer.weight.data = layer.weight.data + rng.normal(
                scale=0.05, size=layer.weight.data.shape)
            layer.weight_quant.calibrate(layer.weight.data)
        futs = [svc.submit("micro-mlp", x) for x in reqs]
        after_batched = [f.result(30) for f in futs]
        after_serial = [svc.infer_serial("micro-mlp", x) for x in reqs]
    for got, ref, old in zip(after_batched, after_serial, before):
        np.testing.assert_array_equal(got, ref)  # fresh plane everywhere
        assert not np.array_equal(got, old)      # and the rebind took effect


# ----------------------------------------------------------------------
# chaos: fault storm through the service
# ----------------------------------------------------------------------

STORM = ",".join([
    "serve:load/*:crash:1",    # first model load crashes
    "calib:*:nan:1",           # first calibration batch picks up a NaN
    "serve:batch/*:crash:2",   # then two batch executions crash
])


@pytest.mark.chaos
def test_fault_storm_structured_errors_and_recovery(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", STORM)
    repo = ModelRepository(micro_specs(), calib_n=8,
                           cache_dir=tmp_path / "cache")
    policy = BatchPolicy(max_batch=4, max_wait_ms=2.0, queue_depth=2,
                         workers=1, retries=0)
    spec = micro_specs()["micro-mlp"]
    reqs = spec.requests(6, seed=2)
    kinds = []
    with InferenceService(repo, policy) as svc:
        # storm phase: drive requests one by one; each armed fault fires
        # deterministically in submission order
        for x in reqs:
            try:
                svc.infer("micro-mlp", x, timeout=30)
            except ServeError as exc:
                kinds.append(exc.to_entry()["error"]["kind"])
        # the batch-site faults fire first (the worker hits ``batch/KEY``
        # before resolving the model), then the load crash, then the
        # calibration NaN — both of the latter surface as model-load
        assert kinds == ["worker-crash", "worker-crash",
                         "model-load", "model-load"]

        # overflow phase: park the single worker on a cold key (its
        # resolve calibrates in-worker), then flood past queue_depth=2
        attn = micro_specs()["micro-attn"].requests(1, seed=1)[0]
        head = svc.submit("micro-attn", attn, "INT8")
        rejected = 0
        floods = []
        for _ in range(12):
            try:
                floods.append(svc.submit("micro-attn", attn, "INT8"))
            except QueueFullError as exc:
                assert exc.to_entry()["error"]["code"] == 503
                rejected += 1
        assert rejected >= 1  # backpressure engaged
        head.result(60)
        for f in floods:
            f.result(60)

        # recovery phase: faults exhausted — service must be correct and
        # bit-identical to the serial reference
        serial = [svc.infer_serial("micro-mlp", x) for x in reqs]
        for x, ref in zip(reqs, serial):
            np.testing.assert_array_equal(svc.infer("micro-mlp", x), ref)
        snap = svc.metrics.snapshot()
        assert snap["failed"] >= 4 and snap["rejected"] == rejected
    assert repo.calibrations >= 2  # NaN'd calibration was retried cleanly


@pytest.mark.chaos
def test_injected_worker_crash_is_retried_when_budgeted(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "serve:batch/*:crash:1")
    repo = ModelRepository(micro_specs(), calib_n=8, persist=False)
    policy = BatchPolicy(max_batch=4, max_wait_ms=2.0, workers=1, retries=1)
    spec = micro_specs()["micro-mlp"]
    x = spec.requests(1, seed=0)[0]
    with InferenceService(repo, policy) as svc:
        out = svc.infer("micro-mlp", x, timeout=30)  # crash absorbed by retry
        np.testing.assert_array_equal(out, svc.infer_serial("micro-mlp", x))
        assert svc.metrics.snapshot()["retried_batches"] == 1
