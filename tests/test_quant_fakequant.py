"""Fake-quantization and calibration semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.formats import INT8, MERSIT8_2, POSIT8_1, get_format
from repro.quant import FakeQuantizer, quantize_with_scale


class TestQuantizeWithScale:
    def test_int8_matches_classic_formula(self):
        """Per-tensor INT8 equals round(x * 127 / s) * s / 127."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=200) * 3.0
        s = np.max(np.abs(x))
        q = quantize_with_scale(x, INT8, s)
        classic = np.round(x * 127.0 / s) * s / 127.0
        np.testing.assert_allclose(q, classic, atol=1e-12)

    def test_max_value_is_exactly_representable(self):
        x = np.array([-5.0, 0.0, 5.0])
        q = quantize_with_scale(x, INT8, 5.0)
        np.testing.assert_allclose(q, x)

    def test_tapered_formats_map_max_to_unity(self):
        """Posit/MERSIT scale the max to 1.0, not maxpos."""
        x = np.array([8.0])
        q = quantize_with_scale(x, MERSIT8_2, 8.0)
        # 8/8 -> 1.0 -> exactly representable -> returns 8.0
        np.testing.assert_allclose(q, [8.0])
        assert MERSIT8_2.quantization_gain == 1.0
        assert POSIT8_1.quantization_gain == 1.0
        assert INT8.quantization_gain == 127.0

    def test_gain_override(self):
        # span many binades so the taper boundaries land differently
        x = np.geomspace(1e-3, 2.0, 64)
        q1 = quantize_with_scale(x, MERSIT8_2, 2.0, gain=1.0)
        q4 = quantize_with_scale(x, MERSIT8_2, 2.0, gain=16.0)
        assert not np.allclose(q1, q4)

    def test_per_channel_scales(self):
        x = np.stack([np.full(8, 1.0), np.full(8, 100.0)])
        q = quantize_with_scale(x, INT8, np.array([1.0, 100.0]), axis=0)
        np.testing.assert_allclose(q, x)

    def test_per_channel_wrong_length_raises(self):
        with pytest.raises(ValueError, match="does not match"):
            quantize_with_scale(np.zeros((2, 4)), INT8, np.ones(3), axis=0)

    def test_bad_scale_ndim_raises(self):
        with pytest.raises(ValueError, match="scalar or 1-D"):
            quantize_with_scale(np.zeros((2, 4)), INT8, np.ones((2, 2)), axis=0)

    def test_zero_scale_channel_is_safe(self):
        x = np.zeros((2, 4))
        q = quantize_with_scale(x, INT8, np.array([0.0, 0.0]), axis=0)
        np.testing.assert_array_equal(q, x)

    def test_input_not_modified(self):
        x = np.linspace(-1, 1, 16)
        x0 = x.copy()
        quantize_with_scale(x, MERSIT8_2, 1.0)
        np.testing.assert_array_equal(x, x0)

    @given(st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=2, max_size=64))
    @settings(max_examples=80, deadline=None)
    def test_error_bounded_by_largest_gap(self, values):
        """Quantization error never exceeds half the largest codebook gap."""
        x = np.array(values)
        s = float(np.max(np.abs(x)))
        if s < 1e-100:  # subnormal scales are clamped by design
            return
        q = quantize_with_scale(x, MERSIT8_2, s)
        # mirror the fused scaling (one multiply by g/s, see fakequant.py)
        scaled = x * (1.0 / s)  # in [-1, 1] up to one ulp
        vals = MERSIT8_2.finite_values
        in_band = vals[(vals >= -1.0) & (vals <= 1.0)]
        max_gap = np.max(np.diff(in_band))
        assert np.max(np.abs(q / s - MERSIT8_2.quantize(scaled))) < 1e-12
        assert np.max(np.abs(scaled - q / s)) <= max_gap / 2 + 1e-12


class TestFakeQuantizer:
    def test_calibrate_per_tensor(self):
        fq = FakeQuantizer(INT8).calibrate(np.array([1.0, -3.0, 2.0]))
        assert fq.scale == 3.0
        assert fq.calibrated

    def test_calibrate_per_channel(self):
        x = np.arange(12, dtype=float).reshape(3, 4)
        fq = FakeQuantizer(INT8, axis=0).calibrate(x)
        np.testing.assert_array_equal(fq.scale, [3.0, 7.0, 11.0])

    def test_observe_running_max(self):
        fq = FakeQuantizer(INT8)
        fq.observe(np.array([1.0]))
        fq.observe(np.array([5.0]))
        fq.observe(np.array([2.0]))
        assert fq.scale == 5.0

    def test_observe_per_channel(self):
        fq = FakeQuantizer(INT8, axis=1)
        fq.observe(np.array([[1.0, 10.0]]))
        fq.observe(np.array([[7.0, 2.0]]))
        np.testing.assert_array_equal(fq.scale, [7.0, 10.0])

    def test_uncalibrated_call_raises(self):
        with pytest.raises(RuntimeError, match="calibration"):
            FakeQuantizer(INT8)(np.ones(3))

    def test_quantized_output_is_representable_after_rescale(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=100)
        fq = FakeQuantizer(MERSIT8_2).calibrate(x)
        q = fq(x)
        # re-applying is a fixed point
        np.testing.assert_allclose(fq(q), q, atol=1e-15)

    def test_explicit_scale_constructor(self):
        fq = FakeQuantizer(INT8, scale=2.0)
        assert fq.calibrated
        np.testing.assert_allclose(fq(np.array([2.0])), [2.0])

    @pytest.mark.parametrize("name", ["INT8", "FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"])
    def test_idempotent_for_every_family(self, name):
        fmt = get_format(name)
        rng = np.random.default_rng(3)
        x = rng.normal(size=64)
        fq = FakeQuantizer(fmt).calibrate(x)
        q = fq(x)
        np.testing.assert_allclose(fq(q), q, atol=1e-15)


class TestEmptyInput:
    """Regression: per-channel reductions used to raise on zero-size input."""

    def test_calibrate_empty_per_tensor(self):
        fq = FakeQuantizer(INT8).calibrate(np.empty(0))
        assert fq.scale == 1.0

    def test_calibrate_empty_per_channel(self):
        fq = FakeQuantizer(INT8, axis=0).calibrate(np.empty((3, 0)))
        np.testing.assert_array_equal(fq.scale, [1.0, 1.0, 1.0])
        # and the quantizer stays usable
        np.testing.assert_array_equal(fq(np.empty((3, 0))), np.empty((3, 0)))

    def test_observe_empty_per_channel_is_identity(self):
        fq = FakeQuantizer(INT8, axis=1)
        fq.observe(np.array([[1.0, 10.0]]))
        fq.observe(np.empty((0, 2)))
        np.testing.assert_array_equal(fq.scale, [1.0, 10.0])

    def test_observe_empty_first(self):
        fq = FakeQuantizer(INT8, axis=0)
        fq.observe(np.empty((2, 0)))
        np.testing.assert_array_equal(fq.scale, [0.0, 0.0])
        fq.observe(np.array([[3.0], [4.0]]))
        np.testing.assert_array_equal(fq.scale, [3.0, 4.0])


class TestQuantizeCached:
    def test_cache_hit_returns_same_array(self):
        t = Tensor(np.linspace(-1, 1, 16))
        fq = FakeQuantizer(MERSIT8_2).calibrate(t.data)
        q1 = fq.quantize_cached(t)
        assert fq.quantize_cached(t) is q1
        np.testing.assert_allclose(q1, fq(t.data).astype(np.float32))

    def test_invalidated_on_data_rebinding(self):
        t = Tensor(np.linspace(-1, 1, 16))
        fq = FakeQuantizer(MERSIT8_2).calibrate(t.data)
        q1 = fq.quantize_cached(t)
        t.data = t.data * 0.5
        q2 = fq.quantize_cached(t)
        assert q2 is not q1
        np.testing.assert_allclose(q2, fq(t.data).astype(np.float32))

    def test_inplace_write_needs_bump_version(self):
        t = Tensor(np.linspace(-1, 1, 16))
        fq = FakeQuantizer(MERSIT8_2).calibrate(t.data)
        q1 = fq.quantize_cached(t)
        t.data[:] = 0.0  # bypasses the setter: cache is stale by contract
        assert fq.quantize_cached(t) is q1
        t.bump_version()
        q2 = fq.quantize_cached(t)
        assert q2 is not q1
        np.testing.assert_array_equal(q2, np.zeros(16, dtype=np.float32))

    def test_invalidated_on_recalibration(self):
        t = Tensor(np.linspace(-1, 1, 16))
        fq = FakeQuantizer(INT8).calibrate(t.data)
        q1 = fq.quantize_cached(t)
        fq.calibrate(t.data * 4.0)  # new scale -> new quantization grid
        q2 = fq.quantize_cached(t)
        assert q2 is not q1
        assert not np.array_equal(q1, q2)

    def test_invalidated_on_observe(self):
        t = Tensor(np.ones(8))
        fq = FakeQuantizer(INT8).calibrate(t.data)
        q1 = fq.quantize_cached(t)
        fq.observe(np.array([5.0]))
        assert fq.quantize_cached(t) is not q1

    def test_different_tensor_not_conflated(self):
        a = Tensor(np.linspace(-1, 1, 16))
        b = Tensor(np.linspace(-2, 2, 16))
        fq = FakeQuantizer(MERSIT8_2).calibrate(a.data)
        fq.quantize_cached(a)
        qb = fq.quantize_cached(b)
        np.testing.assert_allclose(qb, fq(b.data).astype(np.float32))
