"""Shared-memory plane hygiene: validation, alignment, no ``/dev/shm`` litter.

Three properties keep the calibrate-once/attach-everywhere design safe:

* **attach-or-recalibrate** — every attach re-verifies the 48-byte
  header (magic, schema version, payload length, SHA-256).  Stale or
  corrupt segments raise :class:`ShmIntegrityError` and the repository
  demotes to local recalibration with a one-line warning; it never
  serves from an unverified plane.
* **alignment** — every stored array sits on a 64-byte boundary inside
  the segment.  This is load-bearing for bit-identity: NumPy routes
  itemsize-misaligned operands through a buffered matmul path whose
  float32 summation order differs by an ULP from the aligned/BLAS path.
* **hygiene** — the publisher unlinks its segments on clean close and at
  interpreter exit; a SIGKILL'd publisher is mopped up by the stdlib
  resource tracker; attachers (shard workers) never own segments, so a
  crashed worker cannot leak one.
"""

import os
import struct
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.serve import ModelRepository, ShardRouter, micro_specs
from repro.serve import shm

pytestmark = pytest.mark.shard


def _segment_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


@pytest.fixture()
def payload():
    rng = np.random.default_rng(0)
    return ({"kind": "test", "scale": 0.1234567891234567},
            {"a": rng.standard_normal((7, 5)).astype(np.float32),
             "b": rng.integers(0, 255, size=13, dtype=np.uint8),
             "c": rng.standard_normal(3).astype(np.float64)})


# ----------------------------------------------------------------------
# round-trip + validation
# ----------------------------------------------------------------------

def test_publish_attach_roundtrip_is_exact(payload):
    meta, arrays = payload
    seg = shm.publish("t/roundtrip", meta, arrays)
    try:
        att = shm.attach(seg.name)
        assert att.meta == meta     # JSON round-trips the doubles exactly
        assert sorted(att.array_names()) == sorted(arrays)
        for name, arr in arrays.items():
            view = att.array(name)
            assert view.dtype == arr.dtype and view.shape == arr.shape
            np.testing.assert_array_equal(view, arr)
            assert not view.flags.writeable
        att.close()
    finally:
        seg.unlink()


def test_attached_views_are_64_byte_aligned(payload):
    """The alignment regression test: a misaligned view would silently
    flip NumPy onto a different matmul summation order."""
    meta, arrays = payload
    seg = shm.publish("t/align", meta, arrays)
    try:
        att = shm.attach(seg.name)
        for name in att.array_names():
            view = att.array(name)
            assert view.ctypes.data % 64 == 0, (
                f"array {name!r} attached at a misaligned address")
            assert view.flags.aligned
        # and the property that motivates it: matmul over the view is
        # byte-identical to matmul over a fresh aligned copy
        v = att.array("a")
        x = np.random.default_rng(1).standard_normal((4, 7)).astype(np.float32)
        np.testing.assert_array_equal(x @ v, x @ v.copy())
        att.close()
    finally:
        seg.unlink()


@pytest.mark.parametrize("corruption", ["magic", "version", "length", "digest"])
def test_attach_rejects_corrupt_headers(payload, corruption):
    meta, arrays = payload
    seg = shm.publish(f"t/{corruption}", meta, arrays)
    try:
        buf = seg._shm.buf
        if corruption == "magic":
            buf[:4] = b"XXXX"
        elif corruption == "version":
            struct.pack_into("<I", buf, 4, shm.SHM_VERSION + 1)
        elif corruption == "length":
            struct.pack_into("<Q", buf, 8, 2 ** 40)
        elif corruption == "digest":
            buf[16:48] = bytes(32)
        with pytest.raises(shm.ShmIntegrityError):
            shm.attach(seg.name)
    finally:
        seg.unlink()


def test_attach_missing_segment_raises():
    with pytest.raises(shm.ShmIntegrityError):
        shm.attach("repro-0-0-no-such-segment")


def test_repository_demotes_stale_plane_to_recalibration(capsys):
    """A poisoned plane segment costs one warning line and one local
    calibration — results still come from real quantized weights."""
    parent = ModelRepository(micro_specs(), calib_n=4, persist=False)
    meta, arrays = parent.export_plane("micro-mlp", "MERSIT(8,2)")
    key = parent.model_key("micro-mlp", "MERSIT(8,2)", "fakequant")
    seg = shm.publish(f"plane/{key}", meta, arrays)
    try:
        struct.pack_into("<I", seg._shm.buf, 4, shm.SHM_VERSION + 1)  # stale
        worker = ModelRepository(micro_specs(), calib_n=4, persist=False,
                                 plane_manifest={key: seg.name})
        net, _ = worker.resolve("micro-mlp", "MERSIT(8,2)")
        assert net is not None
        assert worker.shm_rejects == 1
        assert worker.shm_attaches == 0
        assert worker.calibrations == 1
        out = capsys.readouterr().out
        assert "rejected" in out and "recalibrating locally" in out
    finally:
        seg.unlink()


# ----------------------------------------------------------------------
# hygiene
# ----------------------------------------------------------------------

def test_clean_close_unlinks_and_is_idempotent(payload):
    meta, arrays = payload
    seg = shm.publish("t/clean", meta, arrays)
    assert seg.name in shm.owned_segments()
    assert _segment_exists(seg.name)
    seg.unlink()
    assert seg.name not in shm.owned_segments()
    assert not _segment_exists(seg.name)
    seg.unlink()   # second unlink is a no-op, not an error


def test_unlink_all_sweeps_every_owned_segment(payload):
    meta, arrays = payload
    names = [shm.publish(f"t/sweep{i}", meta, arrays).name for i in range(3)]
    shm.unlink_all()
    assert shm.owned_segments() == []
    assert not any(_segment_exists(n) for n in names)


def test_crashed_publisher_leaves_no_segment_behind(tmp_path):
    """A publisher hard-killed before cleanup: the stdlib resource
    tracker (which survives the process) unlinks the leaked segment."""
    script = (
        "import os, sys\n"
        "sys.path.insert(0, 'src')\n"
        "import numpy as np\n"
        "from repro.serve import shm\n"
        "seg = shm.publish('t/crash', {'k': 1},\n"
        "                  {'a': np.zeros(4, dtype=np.float32)})\n"
        "print(seg.name, flush=True)\n"
        "os.kill(os.getpid(), 9)\n"   # no atexit, no finally
    )
    proc = subprocess.run([sys.executable, "-c", script], cwd="/root/repo",
                          capture_output=True, text=True, timeout=60)
    name = proc.stdout.strip().split()[-1]
    assert name.startswith("repro-")
    deadline = time.monotonic() + 10.0
    while _segment_exists(name) and time.monotonic() < deadline:
        time.sleep(0.1)
    assert not _segment_exists(name), (
        f"segment {name} leaked after a SIGKILL'd publisher")


def test_attacher_close_never_unlinks(payload):
    """Ownership stays with the publisher: an attacher closing (or
    crashing) must not remove the segment under everyone else."""
    meta, arrays = payload
    seg = shm.publish("t/owner", meta, arrays)
    try:
        att = shm.attach(seg.name)
        att.close()
        assert _segment_exists(seg.name)
        again = shm.attach(seg.name)   # still fully attachable + valid
        np.testing.assert_array_equal(again.array("a"), arrays["a"])
        again.close()
    finally:
        seg.unlink()


def test_router_lifecycle_leaves_no_shm_litter():
    """After a full router run + close: no owned segments, nothing in
    /dev/shm from this publisher."""
    router = ShardRouter(shards=1, specs="micro", calib_n=4,
                         preheat=[("micro-mlp", "MERSIT(8,2)", "fakequant")])
    try:
        published = list(router.stats()["published_segments"])
        assert published, "preheat should publish at least plane + LUT"
        assert all(_segment_exists(n) for n in published)
        x = micro_specs()["micro-mlp"].requests(1, seed=1)[0]
        router.infer("micro-mlp", x, "MERSIT(8,2)", timeout=120)
    finally:
        router.close()
    assert shm.owned_segments() == []
    assert not any(_segment_exists(n) for n in published)
