"""The MERSIT encoder netlist: reference equivalence and nearest-code checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import MERSIT8_2, MERSIT8_3
from repro.hardware.encoders import MersitEncoder, encode_reference


@pytest.fixture(scope="module")
def encoder82():
    return MersitEncoder(MERSIT8_2, width=16, lsb_exp=-10)


class TestReferenceEncoder:
    def test_representables_roundtrip(self):
        fmt = MERSIT8_2
        for v in fmt.finite_values:
            code = encode_reference(float(v), fmt)
            assert fmt.values[code] == v

    def test_zero_and_specials(self):
        fmt = MERSIT8_2
        assert fmt.values[encode_reference(0.0, fmt)] == 0.0
        assert fmt.values[encode_reference(float("inf"), fmt)] == fmt.max_value
        assert fmt.values[encode_reference(float("-inf"), fmt)] == -fmt.max_value
        assert fmt.values[encode_reference(1e9, fmt)] == fmt.max_value

    def test_underflow(self):
        fmt = MERSIT8_2
        assert fmt.values[encode_reference(fmt.min_positive / 3, fmt)] == 0.0

    @given(x=st.floats(-300, 300, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_reference_emits_nearest_code(self, x):
        fmt = MERSIT8_2
        code = encode_reference(x, fmt)
        got = fmt.values[code]
        clipped = min(max(x, -fmt.max_value), fmt.max_value)
        best = float(fmt.quantize(np.array([x]))[0])
        assert abs(clipped - got) <= abs(clipped - best) + 1e-15

    def test_mersit83_also_supported(self):
        fmt = MERSIT8_3
        for v in fmt.finite_values[::5]:
            assert fmt.values[encode_reference(float(v), fmt)] == v


class TestEncoderNetlist:
    def test_dense_sweep_matches_reference(self, encoder82):
        fmt = MERSIT8_2
        mags = np.arange(0, 1 << 12, 3)
        vals = mags * 2.0 ** -10
        vals = np.concatenate([vals, -vals[1:]])
        codes = encoder82.encode_values(vals)
        for v, code in zip(vals, codes):
            assert int(code) == encode_reference(float(v), fmt), f"v={v}"

    def test_random_sweep_matches_reference(self, encoder82):
        fmt = MERSIT8_2
        rng = np.random.default_rng(3)
        mags = rng.integers(0, 1 << 16, 3000)
        vals = mags * 2.0 ** -10 * np.where(rng.random(3000) < 0.5, 1, -1)
        codes = encoder82.encode_values(vals)
        refs = np.array([encode_reference(float(v), fmt) for v in vals])
        np.testing.assert_array_equal(codes, refs)

    def test_saturation_at_top(self, encoder82):
        fmt = MERSIT8_2
        codes = encoder82.encode_values(np.array([60.0, 63.9]))
        # with lsb -10 and width 16, max magnitude is 64 - already in range
        got = fmt.values[codes]
        assert np.all(np.abs(got) <= fmt.max_value)

    def test_zero_input(self, encoder82):
        codes = encoder82.encode_values(np.array([0.0]))
        assert MERSIT8_2.values[int(codes[0])] == 0.0

    def test_signs(self, encoder82):
        codes = encoder82.encode_values(np.array([1.5, -1.5]))
        v = MERSIT8_2.values[codes]
        assert v[0] == 1.5 and v[1] == -1.5

    def test_area_reported(self, encoder82):
        rep = encoder82.area()
        assert rep.total > 0
        assert set(rep.by_group) == {"encoder"}
