"""Differential fuzz harness: engine vs exact rationals vs gate-level MAC.

Three independent implementations of the paper's Kulisch dot product are
held to bit-identical answers on seeded random code streams:

* the vectorized engine (:mod:`repro.engine`),
* the exact-rational reference (:func:`repro.formats.arithmetic.dot`),
* the gate-level :class:`repro.hardware.mac.MacUnit` netlist.

Tier-1 runs a small per-format sample (gate-level restricted to the
paper's three formats and short streams); the ``slow`` marker gates the
larger sweeps.
"""

import zlib
from fractions import Fraction

import numpy as np
import pytest

from repro.engine import dot_exact, matmul_exact, qdot, qmatmul
from repro.formats import PAPER_FORMATS, get_format, registered_formats
from repro.formats.arithmetic import dot
from repro.hardware.mac import MacUnit

ALL_FORMATS = [fmt.name for fmt in registered_formats()]


def _finite_codes(fmt):
    return [c for c, d in enumerate(fmt.decoded) if d.is_finite]


def _special_codes(fmt):
    return [c for c, d in enumerate(fmt.decoded) if not d.is_finite]


def _fuzz_codes(fmt, rng, n):
    """Random codes with the occasional special sprinkled in."""
    codes = rng.integers(0, fmt.ncodes, n)
    specials = _special_codes(fmt)
    if specials and n >= 4:
        k = int(rng.integers(1, max(n // 8, 2)))
        pos = rng.choice(n, size=k, replace=False)
        codes[pos] = rng.choice(specials, size=k)
    return codes


@pytest.mark.parametrize("fmt_name", ALL_FORMATS)
def test_fuzz_dot_matches_exact_rational(fmt_name):
    """Engine code AND exact sum equal the Fraction reference."""
    fmt = get_format(fmt_name)
    rng = np.random.default_rng(zlib.crc32(fmt_name.encode()))
    for _ in range(60):
        n = int(rng.integers(1, 48))
        a = _fuzz_codes(fmt, rng, n)
        b = _fuzz_codes(fmt, rng, n)
        code_ref, exact_ref = dot(fmt, a, b)
        code_eng, exact_eng = dot_exact(fmt, a, b)
        assert code_eng == code_ref
        assert exact_eng == exact_ref


@pytest.mark.slow
@pytest.mark.parametrize("fmt_name", ALL_FORMATS)
def test_fuzz_dot_matches_exact_rational_deep(fmt_name):
    """The full-depth sweep of the same property (1000 dots per format)."""
    fmt = get_format(fmt_name)
    rng = np.random.default_rng(zlib.crc32(fmt_name.encode()) + 1)
    for _ in range(1000):
        n = int(rng.integers(1, 64))
        a = _fuzz_codes(fmt, rng, n)
        b = _fuzz_codes(fmt, rng, n)
        assert qdot(fmt, a, b) == dot(fmt, a, b)[0]


@pytest.mark.parametrize("fmt_name", ["MERSIT(8,2)", "Posit(8,1)", "INT8"])
def test_zero_and_special_streams(fmt_name):
    """Specials and zeros contribute exactly nothing (MAC convention)."""
    fmt = get_format(fmt_name)
    zero = int(fmt.encode_array(np.zeros(1))[0])
    some = _finite_codes(fmt)[len(_finite_codes(fmt)) // 3]
    # all-zero stream rounds to the zero code
    assert qdot(fmt, [zero] * 8, [some] * 8) == zero
    # specials mixed into a stream leave the sum unchanged
    specials = _special_codes(fmt)
    if specials:
        a = [some, specials[0], some]
        b = [some, some, specials[-1]]
        code, exact = dot_exact(fmt, a, b)
        code2, exact2 = dot_exact(fmt, [some], [some])
        assert (code, exact) == (code2, exact2)


@pytest.mark.parametrize("fmt_name", ["MERSIT(8,2)", "Posit(8,1)"])
def test_saturation_stream(fmt_name):
    """A stream of max*max products saturates to the format maximum."""
    fmt = get_format(fmt_name)
    vmax = max(fmt.finite_values)
    cmax = int(fmt.encode_array(np.array([vmax]))[0])
    assert qdot(fmt, [cmax] * 16, [cmax] * 16) == cmax
    # alternating +max/-max products cancel exactly back to zero
    cneg = int(fmt.encode_array(np.array([-vmax]))[0])
    zero = int(fmt.encode_array(np.zeros(1))[0])
    code, exact = dot_exact(fmt, [cmax, cneg] * 8, [cmax] * 16)
    assert exact == 0 and code == zero


@pytest.mark.parametrize("fmt_name", ["MERSIT(8,2)", "Posit(8,2)", "INT8"])
def test_qmatmul_matches_per_element_qdot(fmt_name):
    fmt = get_format(fmt_name)
    rng = np.random.default_rng(7)
    a = rng.integers(0, fmt.ncodes, (5, 9))
    b = rng.integers(0, fmt.ncodes, (9, 4))
    c = qmatmul(fmt, a, b)
    for i in range(5):
        for j in range(4):
            assert c[i, j] == qdot(fmt, a[i], b[:, j])


def _mac_final_value(mac, w_codes, a_codes) -> Fraction:
    """Final gate-level accumulator state as an exact rational."""
    acc = mac.accumulate_hw(w_codes, a_codes)[-1]
    if acc >= 1 << (mac.acc_width - 1):  # two's complement
        acc -= 1 << mac.acc_width
    return Fraction(acc) * Fraction(2) ** mac.frac_lsb_exp


@pytest.mark.parametrize("fmt_name", PAPER_FORMATS)
def test_gate_level_mac_matches_engine(fmt_name):
    """The netlist accumulator lands on the engine's exact sum."""
    fmt = get_format(fmt_name)
    mac = MacUnit(fmt)
    finite = np.array(_finite_codes(fmt))
    rng = np.random.default_rng(11)
    for _ in range(3):
        n = 6
        a = rng.choice(finite, n)
        b = rng.choice(finite, n)
        _, exact = dot_exact(fmt, a, b)
        assert _mac_final_value(mac, a, b) == exact


@pytest.mark.slow
@pytest.mark.parametrize("fmt_name", PAPER_FORMATS)
def test_gate_level_mac_matches_engine_deep(fmt_name):
    """Longer streams and more trials through the gates."""
    fmt = get_format(fmt_name)
    mac = MacUnit(fmt)
    finite = np.array(_finite_codes(fmt))
    rng = np.random.default_rng(13)
    for _ in range(10):
        n = int(rng.integers(4, 32))
        a = rng.choice(finite, n)
        b = rng.choice(finite, n)
        _, exact = dot_exact(fmt, a, b)
        assert _mac_final_value(mac, a, b) == exact


def test_matmul_exact_exposes_raw_accumulators():
    fmt = get_format("MERSIT(8,2)")
    rng = np.random.default_rng(3)
    a = rng.integers(0, 256, (3, 7))
    b = rng.integers(0, 256, (7, 2))
    totals, lsb = matmul_exact(fmt, a, b)
    for i in range(3):
        for j in range(2):
            exact = Fraction(int(totals[i, j])) * Fraction(2) ** lsb
            assert exact == dot(fmt, a[i], b[:, j])[1]
