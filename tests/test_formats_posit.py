"""Posit(8,es) semantics, including the paper's +/-maxpos -> +/-inf variant."""

import math

import numpy as np
import pytest

from repro.formats import POSIT8_0, POSIT8_1, POSIT8_2, POSIT8_3, PositFormat, ValueClass

ALL_POSIT8 = [POSIT8_0, POSIT8_1, POSIT8_2, POSIT8_3]


class TestKnownValues:
    """Hand-computed Posit(8,1) codes (useed = 4)."""

    @pytest.mark.parametrize(
        "code,value",
        [
            (0b01000000, 1.0),           # k=0, e=0, f=0
            (0b01010000, 2.0),           # k=0, e=1
            (0b01100000, 4.0),           # k=1, e=0
            (0b01001000, 1.5),           # f=0b1000 of 4 bits -> 1+8/16
            (0b00100000, 0.25),          # k=-1, e=0
            (0b00110000, 0.5),           # k=-1, e=1
            (0b00000001, 2.0 ** -12),    # minpos
            (0b01111110, 2.0 ** 10),     # max finite (paper variant)
        ],
    )
    def test_positive_decode(self, code, value):
        assert POSIT8_1.decode(code).value == pytest.approx(value)

    def test_twos_complement_negation(self):
        for code in range(1, 128):
            pos = POSIT8_1.decode(code)
            neg = POSIT8_1.decode((-code) & 0xFF)
            if pos.is_finite:
                assert neg.value == pytest.approx(-pos.value)

    def test_zero(self):
        assert POSIT8_1.decode(0).value_class == ValueClass.ZERO


class TestPaperInfVariant:
    def test_maxpos_codes_are_inf(self):
        assert POSIT8_1.decode(0x7F).value == math.inf
        assert POSIT8_1.decode(0x81).value == -math.inf
        assert POSIT8_1.decode(0x80).value == -math.inf

    def test_finite_dynamic_range_matches_fig2(self):
        dr = POSIT8_1.dynamic_range
        assert (dr.min_log2, dr.max_log2) == (-12, 10)

    def test_standard_variant_keeps_maxpos(self):
        std = PositFormat(8, 1, inf_maxpos=False)
        assert std.decode(0x7F).value == pytest.approx(2.0 ** 12)
        assert std.decode(0x80).value_class == ValueClass.NAN
        assert std.dynamic_range.max_log2 == 12

    @pytest.mark.parametrize(
        "fmt,lo,hi",
        [(POSIT8_0, -6, 5), (POSIT8_1, -12, 10), (POSIT8_2, -24, 20), (POSIT8_3, -48, 40)],
        ids=lambda x: getattr(x, "name", x),
    )
    def test_all_ranges(self, fmt, lo, hi):
        dr = fmt.dynamic_range
        assert (dr.min_log2, dr.max_log2) == (lo, hi)


class TestPrecision:
    @pytest.mark.parametrize(
        "fmt,maxbits", [(POSIT8_0, 5), (POSIT8_1, 4), (POSIT8_2, 3), (POSIT8_3, 2)],
        ids=lambda x: getattr(x, "name", x),
    )
    def test_max_fraction_bits(self, fmt, maxbits):
        assert fmt.max_fraction_bits() == maxbits

    def test_fraction_shrinks_with_regime(self):
        """Longer regimes leave fewer fraction bits."""
        for d in POSIT8_1.decoded:
            if d.is_finite and d.regime is not None:
                run = d.regime + 1 if d.regime >= 0 else -d.regime
                # sign(1) + regime run + terminator(1) + es, remainder is fraction
                expected = max(0, 8 - 1 - run - 1 - POSIT8_1.es)
                assert d.fraction_bits == expected


class TestCodebookProperties:
    @pytest.mark.parametrize("fmt", ALL_POSIT8, ids=lambda f: f.name)
    def test_monotone_over_signed_codes(self, fmt):
        """Posits compare like 2's-complement integers."""
        codes = list(range(256))
        signed = [(c - 256 if c >= 128 else c) for c in codes]
        pairs = [(s, fmt.decode(c).value) for s, c in zip(signed, codes)
                 if fmt.decode(c).is_finite or fmt.decode(c).value_class == ValueClass.ZERO]
        pairs.sort()
        values = [v for _, v in pairs]
        assert values == sorted(values)

    @pytest.mark.parametrize("fmt", ALL_POSIT8, ids=lambda f: f.name)
    def test_codebook_symmetric(self, fmt):
        vals = fmt.finite_values
        np.testing.assert_allclose(vals, -vals[::-1])

    @pytest.mark.parametrize("fmt", ALL_POSIT8, ids=lambda f: f.name)
    def test_no_duplicate_finite_values(self, fmt):
        finite = [d.value for d in fmt.decoded if d.is_finite]
        assert len(finite) == len(set(finite))

    def test_codebook_size(self):
        # 256 codes - 1 zero - 3 inf codes (0x7F, 0x80, 0x81) = 252 finite, +1 zero
        assert len(POSIT8_1.finite_values) == 253


class TestDecoderContract:
    """Reconstruction identity used by the hardware decoders."""

    @pytest.mark.parametrize("fmt", ALL_POSIT8, ids=lambda f: f.name)
    def test_value_reconstruction(self, fmt):
        for d in fmt.decoded:
            if d.is_finite:
                rebuilt = (-1.0) ** d.sign * d.significand * 2.0 ** d.effective_exponent
                assert rebuilt == pytest.approx(d.value)
