"""Numerics linter: each rule fires on a minimal snippet, waivers work."""

import textwrap

from repro.analysis import lint_source
from repro.analysis.lint import lint_paths


def lint(src: str, quantized: bool = True):
    return lint_source(textwrap.dedent(src), filename="snippet.py",
                       quantized_path=quantized)


def rules(diags):
    return sorted(d.rule for d in diags)


class TestImplicitFloat64:
    def test_zeros_without_dtype_flagged(self):
        (d,) = lint("import numpy as np\nx = np.zeros(4)\n")
        assert d.rule == "implicit-float64" and "np.zeros" in d.message
        assert d.where == "snippet.py:2"

    def test_explicit_dtype_clean(self):
        assert lint("import numpy as np\nx = np.zeros(4, dtype=np.int64)\n") == []

    def test_full_numpy_spelling_flagged(self):
        assert rules(lint("import numpy\nx = numpy.full(3, 0.25)\n")) == \
            ["implicit-float64"]

    def test_rule_off_outside_quantized_paths(self):
        assert lint("import numpy as np\nx = np.ones(4)\n", quantized=False) == []

    def test_path_inference_from_filename(self):
        src = "import numpy as np\nx = np.arange(8)\n"
        hot = lint_source(src, filename="src/repro/kernels/foo.py")
        cold = lint_source(src, filename="src/repro/experiments/foo.py")
        assert rules(hot) == ["implicit-float64"] and cold == []

    def test_non_numpy_namespace_clean(self):
        assert lint("x = torch.zeros(4)\n") == []


class TestFloatEquality:
    def test_eq_against_float_literal(self):
        (d,) = lint("ok = x == 0.5\n")
        assert d.rule == "float-equality" and "==" in d.message

    def test_ne_and_negative_literal(self):
        assert rules(lint("bad = y != -0.5\n")) == ["float-equality"]

    def test_int_equality_clean(self):
        assert lint("ok = x == 3\n") == []

    def test_chained_comparison(self):
        assert rules(lint("ok = 0.0 == x == y\n")) == ["float-equality"]

    def test_inequalities_clean(self):
        assert lint("ok = x < 0.5 or x >= 1.5\n") == []


class TestUnseededRng:
    def test_default_rng_without_seed(self):
        (d,) = lint("import numpy as np\nr = np.random.default_rng()\n")
        assert d.rule == "unseeded-rng" and "without a seed" in d.message

    def test_default_rng_with_seed_clean(self):
        assert lint("import numpy as np\nr = np.random.default_rng(0)\n") == []

    def test_global_numpy_rng_flagged(self):
        diags = lint("import numpy as np\n"
                     "x = np.random.rand(3)\n"
                     "np.random.seed(0)\n")
        assert rules(diags) == ["unseeded-rng", "unseeded-rng"]

    def test_stdlib_random_without_seed(self):
        assert rules(lint("import random\nr = random.Random()\n")) == \
            ["unseeded-rng"]

    def test_generator_methods_clean(self):
        # instance methods on a seeded Generator are fine
        assert lint("r = rng.integers(0, 256, 8)\n") == []


class TestTensorDataMutation:
    def test_subscript_write_flagged(self):
        (d,) = lint("def f(t):\n    t.data[0] = 1\n")
        assert d.rule == "tensor-data-mutation"

    def test_augassign_flagged(self):
        assert rules(lint("def f(t):\n    t.data[:] *= 2\n")) == \
            ["tensor-data-mutation"]

    def test_write_with_bump_version_clean(self):
        assert lint("def f(t):\n"
                    "    t.data[0] = 1\n"
                    "    t.bump_version()\n") == []

    def test_rebind_clean(self):
        # rebinding .data goes through the property setter, which bumps
        assert lint("def f(t, x):\n    t.data = x\n") == []

    def test_read_clean(self):
        assert lint("def f(t):\n    return t.data[0]\n") == []


class TestBroadExcept:
    def test_except_exception_flagged(self):
        (d,) = lint("try:\n    f()\nexcept Exception:\n    pass\n")
        assert d.rule == "broad-except" and "Exception" in d.message
        assert d.where == "snippet.py:3"

    def test_bare_except_flagged(self):
        (d,) = lint("try:\n    f()\nexcept:\n    pass\n")
        assert d.rule == "broad-except" and "bare" in d.message

    def test_base_exception_flagged(self):
        assert rules(lint("try:\n    f()\nexcept BaseException:\n    pass\n")) \
            == ["broad-except"]

    def test_exception_in_tuple_flagged(self):
        assert rules(lint("try:\n    f()\n"
                          "except (ValueError, Exception):\n    pass\n")) == \
            ["broad-except"]

    def test_specific_exceptions_clean(self):
        assert lint("try:\n    f()\n"
                    "except (OSError, KeyError, ValueError):\n    pass\n") == []

    def test_waived_with_reason(self):
        assert lint("try:\n    f()\n"
                    "except Exception:  # lint: allow[broad-except] retry classifier\n"
                    "    pass\n") == []


class TestWaivers:
    def test_same_line_waiver(self):
        assert lint("ok = x == 0.5  # lint: allow[float-equality] exact guard\n") == []

    def test_line_above_waiver(self):
        assert lint("# lint: allow[float-equality] exact sentinel check\n"
                    "ok = x == 0.5\n") == []

    def test_waiver_for_wrong_rule_does_not_suppress(self):
        diags = lint("ok = x == 0.5  # lint: allow[unseeded-rng] wrong rule\n")
        assert rules(diags) == ["float-equality"]

    def test_waiver_without_reason_is_an_error(self):
        diags = lint("ok = x == 0.5  # lint: allow[float-equality]\n")
        assert "waiver-missing-reason" in rules(diags)

    def test_trailing_waiver_covers_only_its_line(self):
        diags = lint("ok = x == 0.5  # lint: allow[float-equality] here only\n"
                     "bad = y == 0.5\n")
        assert [d.where for d in diags] == ["snippet.py:2"]

    def test_multiple_rules_in_one_bracket(self):
        assert lint(
            "import numpy as np\n"
            "# lint: allow[float-equality, implicit-float64] both reviewed\n"
            "ok = np.zeros(3) == 0.5\n") == []

    def test_multi_rule_bracket_missing_reason_rejects_all(self):
        diags = lint("ok = x == 0.5"
                     "  # lint: allow[float-equality,unseeded-rng]\n")
        assert rules(diags).count("waiver-missing-reason") == 2
        assert "float-equality" in rules(diags)  # nothing was suppressed

    def test_unknown_rule_waiver_rejected_and_reported(self):
        diags = lint("ok = x == 0.5  # lint: allow[flaot-equality] typo\n")
        assert rules(diags) == ["float-equality", "waiver-unknown-rule"]
        (w,) = [d for d in diags if d.rule == "waiver-unknown-rule"]
        assert "flaot-equality" in w.message and w.severity == "error"

    def test_unknown_rule_alongside_known_one(self):
        # the known rule still suppresses; only the typo is reported
        diags = lint("ok = x == 0.5"
                     "  # lint: allow[float-equality,bogus-rule] reason\n")
        assert rules(diags) == ["waiver-unknown-rule"]

    def test_waiver_on_decorator_line_covers_only_that_line(self):
        diags = lint(
            "@register(0.5 == x)  # lint: allow[float-equality] key match\n"
            "def f():\n"
            "    return y == 0.5\n")
        assert [d.where for d in diags] == ["snippet.py:3"]

    def test_comment_waiver_above_decorated_def(self):
        assert lint(
            "# lint: allow[float-equality] decorator-arg sentinel\n"
            "@register(0.5 == x)\n"
            "def f():\n"
            "    return 1\n") == []

    def test_concurrency_rules_are_known_to_the_linter(self):
        # a concurrency waiver on a line with no lint finding must not
        # be reported as unknown (the rule sets are shared)
        assert lint("# lint: allow[blocking-call-under-lock] serialized\n"
                    "x = 1\n") == []


class TestHarness:
    def test_syntax_error_reported_not_raised(self):
        (d,) = lint("def broken(:\n")
        assert d.rule == "syntax-error" and d.severity == "error"

    def test_lint_paths_walks_directories(self, tmp_path):
        pkg = tmp_path / "quant"
        pkg.mkdir()
        (pkg / "a.py").write_text("import numpy as np\nx = np.zeros(3)\n")
        (pkg / "b.py").write_text("y = 1\n")
        diags, nfiles = lint_paths([tmp_path])
        assert nfiles == 2
        assert rules(diags) == ["implicit-float64"]

    def test_diagnostics_sorted_and_deduped(self):
        diags = lint("import numpy as np\n"
                     "a = np.zeros(1)\n"
                     "b = np.ones(2)\n")
        assert [d.where for d in diags] == ["snippet.py:2", "snippet.py:3"]
