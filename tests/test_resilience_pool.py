"""The persistent warm-worker fabric: reuse, respawn, scheduling, stats.

These are the fabric's contract tests (also run as the ``--grid`` smoke
via ``scripts/check.sh --grid``):

* workers persist across ``run_cells`` calls (same PIDs, no respawns);
* warm per-worker caches are exercised and their hit counters surface in
  ``executor.last_run_stats``;
* a dead worker is respawned *selectively* — the survivor keeps its PID;
* per-cell deadlines run from dispatch: one straggler neither blocks the
  fast cells' commits nor multiplies the wall time by the cell count
  (the old k x timeout accounting bug).

Pool-path workers must be module-level (pickled by reference into fork
children).
"""

import os
import time
from pathlib import Path

import pytest

from repro.kernels import clear_kernel_cache
from repro.resilience import executor, faults, run_cells

pytestmark = pytest.mark.grid


def _pid_worker(task):
    return os.getpid()


def _lut_worker(task):
    from repro.formats import get_format
    from repro.kernels import kernel_for
    kernel_for(get_format("MERSIT(8,2)"))
    return task


def _kill_if_marked(task):
    d, i = task
    marker = Path(d) / f"kill{i}"
    if marker.exists():
        marker.unlink()
        os._exit(70)  # SIGKILL analogue: no cleanup, no result
    return os.getpid()


def _ok_worker(task):
    return task * 10


@pytest.fixture(autouse=True)
def no_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)


class TestPersistentPool:
    def test_workers_survive_across_runs(self):
        pids1 = set(run_cells(list(range(4)), _pid_worker, jobs=2))
        stats1 = dict(executor.last_run_stats)
        pids2 = set(run_cells(list(range(4)), _pid_worker, jobs=2))
        stats2 = dict(executor.last_run_stats)
        assert len(pids1) == 2
        assert pids1 == pids2  # the same worker processes served both runs
        assert stats1["mode"] == "pool" and stats1["pool_reused"] is False
        assert stats2["pool_reused"] is True
        assert stats2["respawns"] == 0
        assert set(stats2["worker_pids"]) == pids1

    def test_warm_cache_stats_reported(self):
        clear_kernel_cache()  # fork children must start cold
        run_cells(list(range(6)), _lut_worker, jobs=2)
        first = executor.last_run_stats["worker_stats"]
        assert first.get("lut_builds", 0) + first.get("lut_hits", 0) >= 6
        # a second run on the SAME workers serves the LUT purely from the
        # warm cache: hits only, zero rebuilds
        run_cells(list(range(6)), _lut_worker, jobs=2)
        second = executor.last_run_stats["worker_stats"]
        assert second.get("lut_builds", 0) == 0
        assert second.get("lut_hits", 0) >= 6

    def test_dead_worker_respawned_selectively(self, tmp_path):
        pids = run_cells([(str(tmp_path), 0), (str(tmp_path), 1)],
                         _kill_if_marked, jobs=2)
        (tmp_path / "kill0").touch()
        out = run_cells([(str(tmp_path), 0), (str(tmp_path), 1)],
                        _kill_if_marked, jobs=2, timeout=30.0, retries=1,
                        backoff=0.01)
        stats = executor.last_run_stats
        assert stats["respawns"] == 1
        assert out[1] == pids[1]          # the survivor kept its process
        assert out[0] not in pids         # the killed slot got a fresh worker

    def test_straggler_does_not_block_fast_commits(self, monkeypatch):
        # cell 5 hangs; every fast cell must commit while it is in flight
        monkeypatch.setenv(faults.ENV_VAR, "worker:5:hang")
        commits = []
        t0 = time.monotonic()
        out = run_cells(list(range(6)), _ok_worker, jobs=2, timeout=2.0,
                        retries=0,
                        commit=lambda i, v: commits.append(
                            (i, time.monotonic() - t0)))
        elapsed = time.monotonic() - t0
        assert out[:5] == [0, 10, 20, 30, 40]
        assert out[5]["error"]["kind"] == "timeout"
        assert [i for i, _t in commits] == list(range(6))
        fast = [t for i, t in commits if i < 5]
        assert max(fast) < 1.5            # committed well before the deadline
        assert elapsed < 5.0              # ~1 x timeout, not k x timeout

    def test_zoo_warm_memo_serves_hits(self):
        # parent-side contract of the memo the workers rely on: a warm
        # entry is returned as-is and counted as a hit
        from repro.zoo import registry
        sentinel = (object(), 1.0)
        registry._WARM_MODELS["ResNet18"] = sentinel
        before = registry.warm_model_stats()["zoo_warm_hits"]
        assert registry.pretrained("ResNet18", memo=True) is sentinel
        assert registry.warm_model_stats()["zoo_warm_hits"] == before + 1

    def test_concurrent_hangs_share_one_deadline_window(self, monkeypatch):
        # the k x timeout regression: two cells hang on the two workers at
        # the same time; their deadlines run from their own dispatches, so
        # the run costs ~one timeout window, not one per hung cell
        monkeypatch.setenv(faults.ENV_VAR, "worker:2:hang,worker:3:hang")
        t0 = time.monotonic()
        out = run_cells(list(range(5)), _ok_worker, jobs=2, timeout=2.0,
                        retries=0)
        elapsed = time.monotonic() - t0
        assert out[2]["error"]["kind"] == "timeout"
        assert out[3]["error"]["kind"] == "timeout"
        assert [out[0], out[1], out[4]] == [0, 10, 40]
        assert elapsed < 3.8


# ----------------------------------------------------------------------
# the lease-lock regression: collector-thread respawn vs main-thread
# lease/shutdown.  A fake context keeps these deterministic and fast —
# no real processes are forked.


class _FakeConn:
    def close(self):
        pass

    def send(self, msg):
        pass


class _FakeProc:
    pid = 4242

    def __init__(self):
        self._alive = True

    def start(self):
        pass

    def is_alive(self):
        return self._alive

    def terminate(self):
        self._alive = False

    def join(self, timeout=None):
        self._alive = False

    def kill(self):
        self._alive = False


class _FakeCtx:
    def Pipe(self):
        return _FakeConn(), _FakeConn()

    def Process(self, target=None, args=(), daemon=None, name=None):
        return _FakeProc()

    def get_start_method(self):
        return "fake"


class TestLeaseLockRegression:
    """Before WorkerPool._lease_lock, respawn's index/assign pair raced
    the main thread's shutdown/lease and died with a bare ValueError in
    the shard router's collector thread."""

    def test_respawn_after_shutdown_raises_pool_shutdown(self):
        from repro.resilience.pool import PoolShutdown, WorkerPool
        pool = WorkerPool(_FakeCtx())
        pool.ensure(2)
        w = pool.workers[0]
        pool.shutdown()
        with pytest.raises(PoolShutdown):
            pool.respawn(w)
        assert pool.workers == []

    def test_losing_respawn_of_same_slot_raises_not_valueerror(self):
        from repro.resilience.pool import PoolShutdown, WorkerPool
        pool = WorkerPool(_FakeCtx())
        pool.ensure(1)
        w = pool.workers[0]
        winner = pool.respawn(w)
        assert pool.workers == [winner]
        with pytest.raises(PoolShutdown):  # used to be an uncaught ValueError
            pool.respawn(w)
        assert pool.workers == [winner]
        assert pool.respawns_total == 1

    def test_concurrent_lease_and_respawn_stress(self):
        import threading as _threading

        from repro.resilience.pool import PoolShutdown, WorkerPool
        pool = WorkerPool(_FakeCtx())
        errors = []

        def reviver():
            for _ in range(200):
                try:
                    leased = pool.lease(2)
                    pool.respawn(leased[0])
                except PoolShutdown:
                    pass  # a sibling won the slot: the designed outcome
                except Exception as exc:  # lint: allow[broad-except] the regression under test was an arbitrary crash
                    errors.append(exc)

        threads = [_threading.Thread(target=reviver) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        pool.shutdown()
        assert pool.workers == []
