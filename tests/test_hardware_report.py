"""Report assembly: Fig. 7 rows, Table 3 breakdowns, headline deltas."""

import numpy as np
import pytest

from repro.formats import get_format
from repro.hardware import (
    MacUnit, dnn_operand_stream, headline_deltas, mac_cost, multiplier_breakdown,
)


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    weights = rng.standard_t(df=4, size=20_000) * 0.05
    acts = np.abs(rng.standard_t(df=3, size=20_000)) * 0.4
    rows, breakdowns = {}, {}
    for name in ("FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"):
        fmt = get_format(name)
        mac = MacUnit(fmt)
        w, a = dnn_operand_stream(fmt, weights, acts, n=128)
        rows[name] = mac_cost(mac, w, a)
        breakdowns[name] = multiplier_breakdown(mac, w, a)
    return rows, breakdowns


class TestOperandStream:
    def test_codes_in_range(self):
        fmt = get_format("MERSIT(8,2)")
        rng = np.random.default_rng(1)
        w, a = dnn_operand_stream(fmt, rng.normal(size=500), rng.normal(size=500), n=64)
        assert len(w) == len(a) == 64
        assert w.min() >= 0 and w.max() < 256

    def test_deterministic_in_seed(self):
        fmt = get_format("FP(8,4)")
        rng = np.random.default_rng(2)
        data = rng.normal(size=300)
        w1, a1 = dnn_operand_stream(fmt, data, data, n=32, seed=5)
        w2, a2 = dnn_operand_stream(fmt, data, data, n=32, seed=5)
        np.testing.assert_array_equal(w1, w2)
        np.testing.assert_array_equal(a1, a2)

    def test_zero_tensors_safe(self):
        fmt = get_format("INT8")
        w, a = dnn_operand_stream(fmt, np.zeros(10), np.zeros(10), n=8)
        np.testing.assert_array_equal(fmt.decode_array(w), 0.0)


class TestMacCost:
    def test_totals_are_group_sums(self, setup):
        rows, _ = setup
        for row in rows.values():
            assert row.area_total == pytest.approx(sum(row.area_by_group.values()))
            assert row.power_total == pytest.approx(sum(row.power_by_group.values()))

    def test_breakdown_consistent_with_cost(self, setup):
        rows, breakdowns = setup
        for name in rows:
            assert breakdowns[name].area_decoder == \
                pytest.approx(rows[name].area_by_group["decoder"])

    def test_breakdown_totals(self, setup):
        _, breakdowns = setup
        b = breakdowns["MERSIT(8,2)"]
        assert b.area_total == pytest.approx(
            b.area_decoder + b.area_exp_adder + b.area_frac_multiplier)


class TestHeadlineDeltas:
    def test_directions_match_paper(self, setup):
        rows, breakdowns = setup
        d = headline_deltas(rows, breakdowns)
        assert d["area_saving_vs_posit_pct"] > 0
        assert d["power_saving_vs_posit_pct"] > 0
        assert d["area_premium_vs_fp8_pct"] > 0
        assert d["decoder_area_saving_vs_posit_pct"] > 0

    def test_magnitudes_in_paper_ballpark(self, setup):
        rows, breakdowns = setup
        d = headline_deltas(rows, breakdowns)
        assert 10 < d["area_saving_vs_posit_pct"] < 45      # paper 26.6
        assert 10 < d["power_saving_vs_posit_pct"] < 40     # paper 22.2
        assert 30 < d["decoder_area_saving_vs_posit_pct"] < 75  # paper 59.2

    def test_without_breakdowns(self, setup):
        rows, _ = setup
        d = headline_deltas(rows)
        assert "decoder_area_saving_vs_posit_pct" not in d
