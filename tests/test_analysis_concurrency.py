"""Concurrency analyzer: each rule fires on a planted fixture, repo is clean.

Fixture modules are written to ``tmp_path`` and analyzed exactly like
repo sources; the repo-gate tests at the bottom pin the acceptance
criterion that ``repro analyze concurrency`` runs clean on the tree
(every real finding fixed or waived with a reason).
"""

import textwrap

import pytest

from repro.analysis import analyze_concurrency, check_paths, static_graph


def plant(tmp_path, src: str, name: str = "fixture.py"):
    (tmp_path / name).write_text(textwrap.dedent(src))
    return check_paths([tmp_path])


def rules(diags):
    return sorted(d.rule for d in diags)


CYCLE_SRC = """\
    import threading
    A = threading.Lock()
    B = threading.Lock()
    def ab():
        with A:
            with B:
                pass
    def ba():
        with B:
            with A:
                pass
    """


class TestLockOrderCycle:
    def test_opposite_orders_flagged(self, tmp_path):
        diags, summary = plant(tmp_path, CYCLE_SRC)
        assert rules(diags) == ["lock-order-cycle"]
        (d,) = diags
        assert "fixture.A" in d.data["locks"] and "fixture.B" in d.data["locks"]
        assert "deadlock" in d.message

    def test_consistent_order_clean(self, tmp_path):
        diags, summary = plant(tmp_path, """\
            import threading
            A = threading.Lock()
            B = threading.Lock()
            def ab():
                with A:
                    with B:
                        pass
            def ab2():
                with A:
                    with B:
                        pass
            """)
        assert diags == []
        assert ["fixture.A", "fixture.B"] in summary["edges"]

    def test_interprocedural_edge_recorded(self, tmp_path):
        _, summary = plant(tmp_path, """\
            import threading
            A = threading.Lock()
            B = threading.Lock()
            def inner():
                with B:
                    pass
            def outer():
                with A:
                    inner()
            """)
        assert ["fixture.A", "fixture.B"] in summary["edges"]

    def test_interprocedural_cycle_detected(self, tmp_path):
        diags, _ = plant(tmp_path, """\
            import threading
            A = threading.Lock()
            B = threading.Lock()
            def takes_b():
                with B:
                    pass
            def takes_a():
                with A:
                    pass
            def f1():
                with A:
                    takes_b()
            def f2():
                with B:
                    takes_a()
            """)
        assert rules(diags) == ["lock-order-cycle"]


class TestBlockingUnderLock:
    def test_pipe_send_under_lock(self, tmp_path):
        diags, _ = plant(tmp_path, """\
            import threading
            L = threading.Lock()
            def ship(conn, msg):
                with L:
                    conn.send(msg)
            """)
        assert rules(diags) == ["blocking-call-under-lock"]
        (d,) = diags
        assert "fixture.L" in d.data["held"]

    def test_sleep_and_join_under_lock(self, tmp_path):
        diags, _ = plant(tmp_path, """\
            import threading, time
            L = threading.Lock()
            def nap(worker):
                with L:
                    time.sleep(1.0)
                    worker.join()
            """)
        assert rules(diags) == ["blocking-call-under-lock"] * 2

    def test_str_join_not_blocking(self, tmp_path):
        diags, _ = plant(tmp_path, """\
            import threading
            L = threading.Lock()
            def render(parts):
                with L:
                    return ", ".join(parts)
            """)
        assert diags == []

    def test_condition_wait_on_held_lock_exempt(self, tmp_path):
        diags, _ = plant(tmp_path, """\
            import threading
            class Sched:
                def __init__(self):
                    self._cond = threading.Condition()
                def take(self):
                    with self._cond:
                        self._cond.wait(0.1)
            """)
        assert diags == []

    def test_send_outside_lock_clean(self, tmp_path):
        diags, _ = plant(tmp_path, """\
            import threading
            L = threading.Lock()
            def ship(conn, msg):
                with L:
                    payload = msg
                conn.send(payload)
            """)
        assert diags == []


class TestUnlockedSharedState:
    THREADED = """\
        import threading
        CACHE = {}
        def worker():
            CACHE["k"] = 1
        def main():
            threading.Thread(target=worker).start()
        """

    def test_mutation_from_thread_target(self, tmp_path):
        diags, _ = plant(tmp_path, self.THREADED)
        assert rules(diags) == ["unlocked-shared-state"]
        (d,) = diags
        assert d.data["state"] == "fixture.CACHE"

    def test_mutation_under_lock_clean(self, tmp_path):
        diags, _ = plant(tmp_path, """\
            import threading
            CACHE = {}
            L = threading.Lock()
            def worker():
                with L:
                    CACHE["k"] = 1
            def main():
                threading.Thread(target=worker).start()
            """)
        assert diags == []

    def test_unreachable_mutation_not_flagged(self, tmp_path):
        diags, _ = plant(tmp_path, """\
            CACHE = {}
            def warm():
                CACHE["k"] = 1
            """)
        assert diags == []

    def test_locked_suffix_contract_exempt(self, tmp_path):
        diags, _ = plant(tmp_path, """\
            import threading
            CACHE = {}
            L = threading.Lock()
            def _refill_locked():
                CACHE["k"] = 1
            def worker():
                with L:
                    _refill_locked()
            def main():
                threading.Thread(target=worker).start()
            """)
        assert diags == []


class TestForkAfterThread:
    def test_spawn_after_thread_start(self, tmp_path):
        diags, _ = plant(tmp_path, """\
            import threading, multiprocessing
            def work():
                pass
            def main():
                threading.Thread(target=work).start()
                multiprocessing.Process(target=work).start()
            """)
        assert rules(diags) == ["fork-after-thread"]

    def test_spawn_before_thread_clean(self, tmp_path):
        diags, _ = plant(tmp_path, """\
            import threading, multiprocessing
            def work():
                pass
            def main():
                multiprocessing.Process(target=work).start()
                threading.Thread(target=work).start()
            """)
        assert diags == []

    def test_spawn_through_call_chain(self, tmp_path):
        diags, _ = plant(tmp_path, """\
            import threading, multiprocessing
            def work():
                pass
            def launch_worker():
                multiprocessing.Process(target=work).start()
            def main():
                threading.Thread(target=work).start()
                launch_worker()
            """)
        assert rules(diags) == ["fork-after-thread"]


class TestShmLifecycle:
    def test_attach_side_unlink(self, tmp_path):
        diags, _ = plant(tmp_path, """\
            from multiprocessing import shared_memory
            def bad(name):
                seg = shared_memory.SharedMemory(name=name, create=False)
                seg.unlink()
            """)
        assert "attach-side-unlink" in rules(diags)

    def test_publish_without_atexit_unlink(self, tmp_path):
        diags, _ = plant(tmp_path, """\
            from multiprocessing import shared_memory
            def pub():
                return shared_memory.SharedMemory(name="x", create=True,
                                                  size=64)
            """)
        assert rules(diags) == ["publish-without-unlink"]

    def test_publish_with_atexit_unlink_clean(self, tmp_path):
        diags, _ = plant(tmp_path, """\
            import atexit
            from multiprocessing import shared_memory
            SEGS = []
            def pub():
                SEGS.append(shared_memory.SharedMemory(name="x",
                                                       create=True, size=64))
            def cleanup():
                for s in SEGS:
                    s.unlink()
            atexit.register(cleanup)
            """)
        assert diags == []


class TestWaivers:
    def test_trailing_waiver_suppresses(self, tmp_path):
        diags, _ = plant(tmp_path, """\
            import threading
            L = threading.Lock()
            def ship(conn, msg):
                with L:
                    conn.send(msg)  # lint: allow[blocking-call-under-lock] drained continuously
            """)
        assert diags == []

    def test_comment_above_waiver_suppresses(self, tmp_path):
        diags, _ = plant(tmp_path, """\
            import threading
            L = threading.Lock()
            def ship(conn, msg):
                with L:
                    # lint: allow[blocking-call-under-lock] drained continuously
                    conn.send(msg)
            """)
        assert diags == []

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        diags, _ = plant(tmp_path, """\
            import threading
            L = threading.Lock()
            def ship(conn, msg):
                with L:
                    conn.send(msg)  # lint: allow[lock-order-cycle] wrong rule
            """)
        assert rules(diags) == ["blocking-call-under-lock"]


class TestStaticGraph:
    def test_graph_shape_and_absolute_paths(self, tmp_path):
        (tmp_path / "mod.py").write_text(textwrap.dedent("""\
            import threading
            A = threading.Lock()
            B = threading.Lock()
            def ab():
                with A:
                    with B:
                        pass
            """))
        graph = static_graph([tmp_path])
        assert set(graph) == {"locks", "edges"}
        assert ["mod.A", "mod.B"] in graph["edges"]
        (site,) = graph["locks"]["mod.A"]
        assert site[0].startswith("/") and site[0].endswith("mod.py")
        assert site[1] == 2

    def test_repo_graph_knows_the_serve_locks(self):
        graph = static_graph()
        for lock in ("ModelRepository._key_locks", "WorkerPool._lease_lock",
                     "ShardRouter._slot_locks", "shm._TRACKER_LOCK",
                     "BatchingScheduler._cond"):
            assert lock in graph["locks"], lock


class TestRepoGate:
    def test_repo_is_clean(self):
        report = analyze_concurrency()
        assert report.ok, report.render()
        assert report.kind == "concurrency"
        assert report.summary["files"] > 40

    def test_repo_lock_order_is_acyclic_with_edges(self):
        report = analyze_concurrency()
        edges = report.summary["edges"]
        assert ["ModelRepository._key_locks", "ModelRepository._lock"] in edges
        assert ["ShardRouter._slot_locks", "WorkerPool._lease_lock"] in edges


class TestCliExitCodes:
    def test_zero_on_clean(self, tmp_path, capsys):
        from repro.cli import main
        (tmp_path / "clean.py").write_text("x = 1\n")
        assert main(["analyze", "concurrency", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_one_on_findings(self, tmp_path, capsys):
        from repro.cli import main
        (tmp_path / "bad.py").write_text(textwrap.dedent(CYCLE_SRC))
        assert main(["analyze", "concurrency", str(tmp_path), "--json"]) == 1
        assert "lock-order-cycle" in capsys.readouterr().out

    def test_two_on_usage_error(self, capsys):
        from repro.cli import main
        with pytest.raises(SystemExit) as exc:
            main(["analyze", "not-a-pass"])
        assert exc.value.code == 2

    def test_lint_and_concurrency_share_path_args(self):
        from repro.cli import build_parser
        parser = build_parser()
        for cmd in ("lint", "concurrency"):
            args = parser.parse_args(["analyze", cmd, "a.py", "--json"])
            assert args.paths == ["a.py"] and args.json
        args = parser.parse_args(["analyze", "netlist", "--all", "--json"])
        assert args.all_variants and args.json
