"""Documentation invariants: every public item is documented."""

import ast
import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(repro.__file__).resolve().parents[2]


def all_repro_modules():
    names = ["repro"]
    for mod in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(mod.name)
    return names


@pytest.mark.parametrize("module_name", all_repro_modules())
def test_module_has_docstring(module_name):
    mod = importlib.import_module(module_name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("module_name", all_repro_modules())
def test_public_classes_and_functions_documented(module_name):
    mod = importlib.import_module(module_name)
    public = getattr(mod, "__all__", None)
    if public is None:
        return
    for name in public:
        obj = getattr(mod, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", "").startswith("repro"):
                assert inspect.getdoc(obj), f"{module_name}.{name} lacks a docstring"


def test_every_package_defines_all_or_is_leaf():
    for name in all_repro_modules():
        mod = importlib.import_module(name)
        if hasattr(mod, "__path__"):  # a package
            assert hasattr(mod, "__all__"), f"package {name} lacks __all__"


class TestRepoDocs:
    @pytest.mark.parametrize("fname", ["README.md", "DESIGN.md"])
    def test_top_level_docs_exist(self, fname):
        path = REPO_ROOT / fname
        assert path.exists(), f"{fname} missing"
        assert len(path.read_text()) > 500

    def test_design_lists_every_experiment(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        for artefact in ("table1", "table2", "table3", "fig4", "fig6", "fig7"):
            assert artefact in text

    def test_examples_have_module_docstrings(self):
        for path in sorted((REPO_ROOT / "examples").glob("*.py")):
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), f"{path.name} lacks a docstring"

    def test_examples_quickstart_exists(self):
        assert (REPO_ROOT / "examples" / "quickstart.py").exists()

    def test_at_least_three_examples(self):
        examples = list((REPO_ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3

    def test_benchmarks_cover_every_paper_artifact(self):
        names = {p.name for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")}
        for artefact in ("table1", "fig2", "fig4", "table2", "fig6", "fig7",
                         "table3", "headline"):
            assert any(artefact in n for n in names), f"no bench for {artefact}"

    def test_examples_are_valid_python(self):
        for path in sorted((REPO_ROOT / "examples").glob("*.py")):
            compile(path.read_text(), str(path), "exec")


class TestServingDocs:
    """The serving subsystem is documented where users will look."""

    def test_readme_has_a_serving_section(self):
        text = (REPO_ROOT / "README.md").read_text()
        assert "## Serving" in text
        assert "repro.serve" in text
        assert "bit-identical" in text
        assert "check.sh --serve" in text

    def test_design_has_the_serving_section(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        assert "## 11. Inference serving (`repro.serve`)" in text
        for term in ("batch_invariant_matmul", "max_batch", "queue_depth",
                     "BENCH_serve.json", "quantize_cached"):
            assert term in text, f"DESIGN.md serving section lacks {term}"

    def test_design_fault_table_lists_serve_scope(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        assert "| `serve` |" in text

    def test_cli_help_lists_serve(self):
        from repro.cli import build_parser
        help_text = build_parser().format_help()
        assert "serve" in help_text
        args = build_parser().parse_args(
            ["serve", "micro-cnn", "--max-batch", "4", "--mode", "engine",
             "--open", "--rate", "100", "--stats"])
        assert (args.max_batch, args.mode, args.open_loop,
                args.stats) == (4, "engine", True, True)

    def test_bench_serve_exists_with_docstring(self):
        path = REPO_ROOT / "benchmarks" / "bench_serve.py"
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree)


class TestShardDocs:
    """The sharded-serving subsystem is documented where users will look."""

    def test_readme_has_the_sharded_section(self):
        text = (REPO_ROOT / "README.md").read_text()
        assert "### Sharded serving (`--shards N`)" in text
        assert "check.sh --shard" in text
        assert "cpu_limited" in text

    def test_design_has_the_shard_section(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        assert "## 13. Sharded serving (`serve.shard` + `serve.shm`)" in text
        for term in ("HashRing", "attach-or-recalibrate", "SHA-256",
                     "64-byte", "Exactly-once", "merge_snapshots",
                     "percentiles_exact"):
            assert term in text, f"DESIGN.md shard section lacks {term}"

    def test_design_fault_table_lists_shard_scope(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        assert "| `shard` |" in text

    def test_cli_serve_accepts_shards_flag(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["serve", "micro-mlp", "--shards", "2", "--stats"])
        assert (args.shards, args.stats) == (2, True)
        assert build_parser().parse_args(["serve", "micro-mlp"]).shards == 0

    def test_faults_registry_lists_the_shard_points(self):
        from repro.resilience import faults
        scopes = {p[0] for p in faults.INJECTION_POINTS}
        assert "shard" in scopes
        shard_sites = " ".join(p[1] for p in faults.INJECTION_POINTS
                               if p[0] == "shard")
        assert "ShardRouter.submit" in shard_sites
        assert "shm" in shard_sites or "segment" in shard_sites.lower()


class TestGatewayDocs:
    """The network gateway is documented where users will look."""

    def test_readme_has_the_gateway_section(self):
        text = (REPO_ROOT / "README.md").read_text()
        assert "### Serving over the network" in text
        assert "GatewayClient" in text
        assert "check.sh --net" in text

    def test_design_has_the_gateway_section(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        assert "## 15. Network gateway (`serve.gateway` + `serve.client`)" \
            in text
        for term in ("length-prefixed", "circuit breaker", "half-open",
                     "deadline propagation", "max_inflight", "drain",
                     "force_respawn", "RETRYABLE_KINDS"):
            assert term in text, f"DESIGN.md gateway section lacks {term}"

    def test_design_fault_table_lists_net_scope(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        assert "| `net` |" in text
        for action in ("drop", "delay", "garble"):
            assert action in text

    def test_faults_registry_lists_the_net_points(self):
        from repro.resilience import faults
        scopes = {p[0] for p in faults.INJECTION_POINTS}
        assert "net" in scopes
        net_sites = " ".join(p[1] for p in faults.INJECTION_POINTS
                             if p[0] == "net")
        assert "accept" in net_sites
        assert "frame" in net_sites and "reply" in net_sites

    def test_cli_serve_accepts_gateway_flags(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["serve", "micro-mlp", "--host", "0.0.0.0", "--port", "9000",
             "--drain-timeout", "5"])
        assert (args.host, args.port, args.drain_timeout) == \
            ("0.0.0.0", 9000, 5.0)
        legacy = build_parser().parse_args(["serve", "micro-mlp", "--stats"])
        assert legacy.host is None and legacy.port is None and legacy.stats

    def test_check_sh_gates_the_net_suite(self):
        text = (REPO_ROOT / "scripts" / "check.sh").read_text()
        assert "--net" in text and "-m net" in text


class TestMixedPrecisionDocs:
    """Mixed-precision PTQ + frontier are documented where users look."""

    def test_readme_has_the_frontier_quickstart(self):
        text = (REPO_ROOT / "README.md").read_text()
        assert "### Mixed-precision frontier quickstart" in text
        assert "experiments frontier" in text
        assert "mixed(" in text

    def test_design_has_the_mixed_section(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        assert ("## 16. Mixed-precision PTQ "
                "(`quant.mixed` + `experiments.frontier`)") in text
        for term in ("mixed(DEFAULT;layer=FMT;...)", "knapsack",
                     "bias_correct", "unit cost", "Pareto",
                     "mixed:allocate"):
            assert term in text, f"DESIGN.md mixed section lacks {term}"

    def test_design_fault_table_lists_the_mixed_points(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        assert "| `mixed` |" in text
        assert "`frontier._eval_cell_task`" in text

    def test_faults_registry_lists_the_mixed_points(self):
        from repro.resilience import faults
        scopes = {p[0] for p in faults.INJECTION_POINTS}
        assert "mixed" in scopes
        sites = " ".join(p[1] for p in faults.INJECTION_POINTS)
        assert "allocate" in sites
        assert "frontier" in sites

    def test_cli_experiments_accepts_frontier(self):
        import repro.cli
        assert "frontier" in repro.cli.__doc__
        args = repro.cli.build_parser().parse_args(
            ["experiments", "frontier", "--jobs", "2", "--seeds", "3"])
        assert (args.names, args.jobs, args.seeds) == (["frontier"], 2, 3)


class TestConcurrencyDocs:
    """The concurrency analyzer + sanitizer are documented where users look."""

    def test_readme_covers_the_concurrency_pass(self):
        text = (REPO_ROOT / "README.md").read_text()
        assert "analyze concurrency" in text
        assert "REPRO_SANITIZE=1" in text
        assert "check.sh" in text and "--sanitize" in text
        assert "0 clean, 1 findings, 2 usage error" in text

    def test_design_has_the_concurrency_section(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        assert ("## 14. Concurrency analysis "
                "(`analysis.concurrency` + `repro.sanitize`)") in text
        for term in ("lock-inversion", "cross_check", "PoolShutdown",
                     "Tarjan", "creation site", "_locked"):
            assert term in text, f"DESIGN.md concurrency section lacks {term}"

    def test_design_table_lists_every_diagnostic_kind(self):
        from repro.analysis.concurrency import RULES
        text = (REPO_ROOT / "DESIGN.md").read_text()
        for rule in RULES:
            assert f"| `{rule}` |" in text, rule
        for kind in ("lock-inversion", "unknown-lock", "missing-edge"):
            assert kind in text, kind

    def test_cli_help_lists_the_concurrency_pass(self):
        from repro.cli import build_parser
        help_text = build_parser().format_help()
        assert "analyze" in help_text
        args = build_parser().parse_args(
            ["analyze", "concurrency", "src/repro", "--json"])
        assert args.paths == ["src/repro"] and args.json

    def test_check_sh_gates_the_concurrency_pass(self):
        text = (REPO_ROOT / "scripts" / "check.sh").read_text()
        assert "analyze concurrency" in text
        assert "--sanitize" in text and "REPRO_SANITIZE=1" in text
