"""Bit-LUT kernel: exhaustive bit-exactness, tie-breaking, backend dispatch."""

import numpy as np
import pytest

from repro import kernels
from repro.formats import get_format, registered_formats

ALL = registered_formats()


def _probe_inputs(fmt) -> np.ndarray:
    """Every float16-spaced value plus specials and rounding boundaries."""
    # all 65,536 float16 bit patterns: covers +/-0, subnormals, NaN, +/-inf
    # and a dense sweep of the magnitude range every 8-bit format lives in
    h = np.arange(1 << 16, dtype=np.uint16).view(np.float16).astype(np.float64)
    mids = fmt._midpoints
    near = np.concatenate([mids,
                           np.nextafter(mids, np.inf),
                           np.nextafter(mids, -np.inf)])
    specials = np.array([0.0, -0.0, np.nan, np.inf, -np.inf,
                         fmt.max_value, -fmt.max_value,
                         np.nextafter(fmt.max_value, np.inf),
                         np.nextafter(-fmt.max_value, -np.inf),
                         1e300, -1e300])
    return np.concatenate([h, near, specials, fmt.finite_values])


class TestBitExactness:
    @pytest.mark.parametrize("fmt", ALL, ids=lambda f: f.name)
    def test_quantize_exhaustive(self, fmt):
        x = _probe_inputs(fmt)
        ref = fmt.quantize_reference(x)
        lut = kernels.kernel_for(fmt).quantize(x)
        np.testing.assert_array_equal(ref, lut)

    @pytest.mark.parametrize("fmt", ALL, ids=lambda f: f.name)
    def test_encode_exhaustive(self, fmt):
        x = _probe_inputs(fmt)
        _, codes = fmt._sorted_codes
        ref = codes[fmt._reference_index(x)]
        lut = kernels.kernel_for(fmt).encode(x)
        np.testing.assert_array_equal(ref, lut)

    @pytest.mark.parametrize("fmt", ALL, ids=lambda f: f.name)
    def test_random_normals_exact(self, fmt):
        rng = np.random.default_rng(42)
        for scale in (1e-3, 1.0, 100.0):
            x = rng.normal(scale=scale, size=20000)
            np.testing.assert_array_equal(
                fmt.quantize_reference(x), kernels.kernel_for(fmt).quantize(x))

    def test_shapes_preserved(self):
        fmt = get_format("MERSIT(8,2)")
        k = kernels.kernel_for(fmt)
        assert k.quantize(np.zeros((2, 3, 4))).shape == (2, 3, 4)
        assert k.quantize(np.asarray(0.75)).shape == ()
        assert k.encode(np.zeros((5, 2))).shape == (5, 2)


class TestTieBreaking:
    """The pinned convention: ties round half *away from zero*."""

    @pytest.mark.parametrize("fmt", ALL, ids=lambda f: f.name)
    @pytest.mark.parametrize("backend", ["reference", "lut"])
    def test_midpoints_round_away_from_zero(self, fmt, backend):
        mids = fmt._midpoints
        vals = fmt.finite_values
        i = np.arange(len(mids))
        expected = np.where(mids > 0, vals[i + 1], vals[i])
        with kernels.use_backend(backend):
            np.testing.assert_array_equal(fmt.quantize(mids), expected)

    def test_backends_agree_on_midpoints(self):
        fmt = get_format("MERSIT(8,2)")
        with kernels.use_backend("reference"):
            ref = fmt.quantize(fmt._midpoints)
        with kernels.use_backend("lut"):
            lut = fmt.quantize(fmt._midpoints)
        np.testing.assert_array_equal(ref, lut)


class TestDispatch:
    def test_default_backend_is_lut(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        kernels.set_backend(None)
        assert kernels.get_backend() == "lut"

    def test_env_var_selects_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "reference")
        kernels.set_backend(None)
        assert kernels.get_backend() == "reference"

    def test_invalid_env_var_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "simd")
        kernels.set_backend(None)
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.get_backend()

    def test_set_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "reference")
        kernels.set_backend("lut")
        try:
            assert kernels.get_backend() == "lut"
        finally:
            kernels.set_backend(None)

    def test_use_backend_restores(self):
        before = kernels.get_backend()
        with kernels.use_backend("reference"):
            assert kernels.get_backend() == "reference"
        assert kernels.get_backend() == before

    def test_quantize_identical_across_backends(self):
        fmt = get_format("Posit(8,1)")
        x = np.random.default_rng(5).normal(size=5000)
        with kernels.use_backend("reference"):
            ref = fmt.quantize(x)
        with kernels.use_backend("lut"):
            lut = fmt.quantize(x)
        np.testing.assert_array_equal(ref, lut)

    def test_encode_array_identical_across_backends(self):
        fmt = get_format("FP(8,4)")
        x = np.random.default_rng(6).normal(size=5000)
        with kernels.use_backend("reference"):
            ref = fmt.encode_array(x)
        with kernels.use_backend("lut"):
            lut = fmt.encode_array(x)
        np.testing.assert_array_equal(ref, lut)


class TestKernelCache:
    def test_kernel_is_cached_per_format(self):
        fmt = get_format("MERSIT(8,2)")
        assert kernels.kernel_for(fmt) is kernels.kernel_for(fmt)

    def test_clear_cache_rebuilds(self):
        fmt = get_format("INT8")
        k1 = kernels.kernel_for(fmt)
        kernels.clear_kernel_cache()
        assert kernels.kernel_for(fmt) is not k1

    def test_wide_format_rejected_by_kernel(self):
        wide = get_format("int13")  # 13 bits > LUT_MAX_BITS
        with pytest.raises(ValueError, match="at most"):
            kernels.kernel_for(wide)

    def test_wide_format_quantize_falls_back_to_reference(self):
        wide = get_format("int13")
        x = np.array([0.4, 1.6, -2.5])
        with kernels.use_backend("lut"):
            np.testing.assert_array_equal(wide.quantize(x),
                                          wide.quantize_reference(x))
