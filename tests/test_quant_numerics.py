"""Numeric guards: NaN/Inf in calibration or the engine fail loudly.

Before these guards a NaN in a calibration batch became a NaN scale, a
garbage accuracy number, and — through the incremental artifact cache —
a *pinned* garbage cell.  Every guard must raise a diagnostic
:class:`NumericsError` naming the layer/observer/statistic instead.
"""

import pickle

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.quant import PTQConfig, quantize_model
from repro.quant.fakequant import FakeQuantizer
from repro.quant.observers import MaxObserver, MSEObserver, PercentileObserver
from repro.resilience import NumericsError, faults
from repro.resilience.numerics import ensure_finite, nonfinite_summary


@pytest.fixture(autouse=True)
def no_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)


class _Net(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(7)
        self.fc1 = Linear(8, 16, rng=rng)
        self.fc2 = Linear(16, 4, rng=rng)

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


def _calib_batches(n=3, poison_last=False):
    rng = np.random.default_rng(0)
    batches = [rng.normal(size=(4, 8)).astype(np.float32) for _ in range(n)]
    if poison_last:
        batches[-1][0, 0] = np.nan
    return batches


class TestPrimitives:
    def test_nonfinite_summary(self):
        x = np.array([1.0, np.nan, np.inf, -np.inf, np.nan])
        assert nonfinite_summary(x) == "2 NaN / 2 Inf of 5 values"
        assert nonfinite_summary(np.ones(3)) is None

    def test_ensure_finite_passthrough(self):
        x = np.ones(3)
        assert ensure_finite(x, "scale") is x

    def test_error_message_carries_context(self):
        with pytest.raises(NumericsError) as exc:
            ensure_finite(np.array(np.nan), "running max",
                          layer="fc1", observer="max")
        msg = str(exc.value)
        assert "running max" in msg and "layer=fc1" in msg
        assert "observer=max" in msg
        assert exc.value.stat == "running max"

    def test_pickle_roundtrip_preserves_context(self):
        # pool workers ship NumericsError back to the parent via pickle
        err = NumericsError("bad", layer="fc1", observer="max", stat="scale")
        back = pickle.loads(pickle.dumps(err))
        assert (back.layer, back.observer, back.stat) == ("fc1", "max", "scale")
        assert str(back) == str(err)

    def test_with_context_fills_only_missing(self):
        err = NumericsError("bad", observer="mse")
        out = err.with_context(layer="fc2", observer="max")
        assert out.layer == "fc2"
        assert out.observer == "mse"  # existing field wins


class TestObserverGuards:
    def test_max_observer_raises_at_poisoned_batch(self):
        obs = MaxObserver()
        obs.observe(np.ones(4))
        with pytest.raises(NumericsError, match="batch max"):
            obs.observe(np.array([1.0, np.nan]))

    def test_percentile_observer_raises_on_inf(self):
        obs = PercentileObserver(percentile=99.0)
        obs.observe(np.array([1.0, np.inf, 2.0]))
        with pytest.raises(NumericsError, match="percentile"):
            obs.compute_scale()

    def test_mse_observer_raises_instead_of_silent_max(self):
        # regression: a NaN poisons every grid-search MSE (all comparisons
        # false) so compute_scale silently returned the raw max before
        from repro.formats import get_format
        obs = MSEObserver(get_format("INT8"))
        obs.observe(np.array([1.0, np.nan, 0.5]))
        with pytest.raises(NumericsError, match="calibration stream"):
            obs.compute_scale()


class TestFakeQuantizerGuards:
    def test_calibrate_inf_weights_names_layer(self):
        from repro.formats import get_format
        fq = FakeQuantizer(get_format("INT8"), name="conv3")
        with pytest.raises(NumericsError) as exc:
            fq.calibrate(np.array([1.0, np.inf]))
        assert exc.value.layer == "conv3"
        assert exc.value.stat == "max-magnitude scale"

    def test_observe_nan_names_layer(self):
        from repro.formats import get_format
        fq = FakeQuantizer(get_format("INT8"), name="fc9")
        with pytest.raises(NumericsError) as exc:
            fq.observe(np.array([np.nan]))
        assert exc.value.layer == "fc9"


class TestModelLevel:
    def test_quantize_model_names_offending_layer(self):
        with pytest.raises(NumericsError) as exc:
            quantize_model(_Net(), PTQConfig(weight_format="MERSIT(8,2)"),
                           [Tensor(b) for b in _calib_batches(poison_last=True)],
                           forward=lambda m, b: m(b))
        # the NaN enters at the first layer's input observer
        assert exc.value.layer == "fc1"

    def test_mse_finalize_attributes_layer(self):
        cfg = PTQConfig(weight_format="MERSIT(8,2)",
                        activation_observer="mse")
        with pytest.raises(NumericsError) as exc:
            quantize_model(_Net(), cfg,
                           [Tensor(b) for b in _calib_batches(poison_last=True)],
                           forward=lambda m, b: m(b))
        assert exc.value.layer == "fc1"
        assert exc.value.observer in ("mse", "MSEObserver")

    def test_clean_calibration_unaffected(self):
        model = quantize_model(
            _Net(), PTQConfig(weight_format="MERSIT(8,2)"),
            [Tensor(b) for b in _calib_batches()],
            forward=lambda m, b: m(b))
        out = model(Tensor(_calib_batches(1)[0]))
        assert np.isfinite(out.data).all()

    def test_calib_fault_targets_one_layer(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "calib:fc2:nan")
        with pytest.raises(NumericsError) as exc:
            quantize_model(_Net(), PTQConfig(weight_format="MERSIT(8,2)"),
                           [Tensor(b) for b in _calib_batches()],
                           forward=lambda m, b: m(b))
        assert exc.value.layer == "fc2"


class TestEngineGuards:
    def _engine_model(self):
        return quantize_model(
            _Net(), PTQConfig(weight_format="MERSIT(8,2)", mode="engine"),
            [Tensor(b) for b in _calib_batches()],
            forward=lambda m, b: m(b))

    def test_nan_activation_rejected_at_encode(self):
        model = self._engine_model()
        x = _calib_batches(1)[0]
        x[0, 0] = np.nan
        with pytest.raises(NumericsError) as exc:
            model(Tensor(x))
        assert exc.value.stat == "activation"
        assert "NaN" in str(exc.value)

    def test_engine_encode_fault(self, monkeypatch):
        model = self._engine_model()
        monkeypatch.setenv(faults.ENV_VAR, "engine:encode:nan:1")
        with pytest.raises(NumericsError):
            model(Tensor(_calib_batches(1)[0]))
        monkeypatch.setenv(faults.ENV_VAR, "")
        out = model(Tensor(_calib_batches(1)[0]))
        assert np.isfinite(out.data).all()
