"""The Kulisch MAC: exactness, widths, area/power structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import get_format
from repro.hardware import MacUnit

FORMATS = ["FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"]


@pytest.fixture(scope="module")
def macs():
    return {n: MacUnit(get_format(n)) for n in FORMATS}


class TestExactAccumulation:
    @pytest.mark.parametrize("name", FORMATS)
    def test_random_stream_bit_exact(self, macs, name):
        mac = macs[name]
        rng = np.random.default_rng(1)
        w = rng.integers(0, 256, 200)
        a = rng.integers(0, 256, 200)
        assert mac.accumulate_hw(w, a) == mac.accumulate_reference(w, a)

    @pytest.mark.parametrize("name", FORMATS)
    def test_specials_contribute_zero(self, macs, name):
        mac = macs[name]
        fmt = mac.fmt
        specials = [d.code for d in fmt.decoded if not d.is_finite]
        w = np.array(specials[:4] * 2)
        a = np.full(len(w), fmt.encode(1.0))
        assert mac.accumulate_reference(w, a)[-1] == 0
        assert mac.accumulate_hw(w, a)[-1] == 0

    def test_accumulation_matches_float_math(self, macs):
        """Decoded-value dot product equals the fixed-point result."""
        mac = macs["MERSIT(8,2)"]
        fmt = mac.fmt
        rng = np.random.default_rng(5)
        values_w = rng.normal(size=50) * 0.5
        values_a = rng.normal(size=50) * 0.5
        w = fmt.encode_array(values_w)
        a = fmt.encode_array(values_a)
        acc = mac.accumulate_hw(w, a)[-1]
        width = mac.acc_width
        if acc >= 1 << (width - 1):
            acc -= 1 << width
        got = acc * 2.0 ** mac.frac_lsb_exp
        want = float(np.sum(fmt.decode_array(w) * fmt.decode_array(a)))
        assert got == pytest.approx(want, rel=1e-12)

    @given(codes=st.lists(st.tuples(st.integers(0, 255), st.integers(0, 255)),
                          min_size=1, max_size=24))
    @settings(max_examples=25, deadline=None)
    def test_hypothesis_streams_mersit(self, codes):
        mac = MacUnit(get_format("MERSIT(8,2)"))
        w = np.array([c[0] for c in codes])
        a = np.array([c[1] for c in codes])
        assert mac.accumulate_hw(w, a) == mac.accumulate_reference(w, a)


class TestWidths:
    def test_paper_w_values(self, macs):
        assert macs["FP(8,4)"].paper_w == 33
        assert macs["Posit(8,1)"].paper_w == 45
        assert macs["MERSIT(8,2)"].paper_w == 35

    def test_acc_width_ordering_follows_w(self, macs):
        widths = {n: macs[n].acc_width for n in FORMATS}
        assert widths["FP(8,4)"] < widths["MERSIT(8,2)"] < widths["Posit(8,1)"]

    def test_margin_adds_exact_bits(self):
        fmt = get_format("MERSIT(8,2)")
        assert MacUnit(fmt, overflow_margin=20).acc_width == \
            MacUnit(fmt, overflow_margin=10).acc_width + 10


class TestCostStructure:
    def test_area_groups_complete(self, macs):
        from repro.hardware import MAC_GROUPS
        for mac in macs.values():
            by_group = mac.area().by_group
            assert set(by_group) == set(MAC_GROUPS)

    def test_mac_area_ordering(self, macs):
        a = {n: macs[n].area().total for n in FORMATS}
        assert a["MERSIT(8,2)"] < a["Posit(8,1)"]
        assert a["FP(8,4)"] < a["Posit(8,1)"]

    def test_power_scales_with_activity(self, macs):
        mac = macs["MERSIT(8,2)"]
        quiet_w = np.full(64, mac.fmt.encode(0.0))
        quiet_a = np.full(64, mac.fmt.encode(0.0))
        rng = np.random.default_rng(0)
        hot_w = rng.integers(0, 256, 64)
        hot_a = rng.integers(0, 256, 64)
        p_quiet = mac.power(quiet_w, quiet_a)
        p_hot = mac.power(hot_w, hot_a)
        assert p_hot.dynamic > p_quiet.dynamic

    def test_power_zero_fraction_codes_cheaper(self, macs):
        """The paper's switching argument: MERSIT ops with zero-length
        fractions toggle less than full-fraction operands."""
        mac = macs["MERSIT(8,2)"]
        fmt = mac.fmt
        # zero-fraction codes: |k| in {2, 3} <-> magnitudes near range ends
        zero_frac = [d.code for d in fmt.decoded
                     if d.is_finite and d.fraction_bits == 0 and d.sign == 0]
        full_frac = [d.code for d in fmt.decoded
                     if d.is_finite and d.fraction_bits == 4 and d.sign == 0]
        rng = np.random.default_rng(2)
        zf = rng.choice(zero_frac, 128)
        ff = rng.choice(full_frac, 128)
        p_zf = mac.power(zf, zf)
        p_ff = mac.power(ff, ff)
        # compare the fraction multiplier's group power
        assert p_zf.by_group["frac_multiplier"] < p_ff.by_group["frac_multiplier"]

    def test_clock_scaling_linear_in_dynamic(self, macs):
        mac = macs["FP(8,4)"]
        rng = np.random.default_rng(0)
        w = rng.integers(0, 256, 64)
        a = rng.integers(0, 256, 64)
        p100 = mac.power(w, a, clock_mhz=100)
        p200 = mac.power(w, a, clock_mhz=200)
        assert p200.dynamic == pytest.approx(2 * p100.dynamic)
        assert p200.leakage == pytest.approx(p100.leakage)
