"""Graceful drain: in-flight work finishes, new work is refused, exit 0.

Two levels:

* **in-process** — a gated stub service holds one request in flight
  while the ``drain`` op lands: the in-flight request must still
  complete, new requests (on old *and* new connections) must get a
  structured ``draining`` error, and ``wait_closed`` must observe the
  full teardown (supervisor stopped, service closed with
  ``drain=True``).
* **subprocess** — the real CLI path: ``repro serve --host --port``
  prints its bound address, SIGTERM lands while a request is in flight
  (held open by an armed ``net:reply/infer:delay`` fault), the reply
  still arrives bit-identical to serial inference, and the process
  exits 0.
"""

import os
import re
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import Future
from pathlib import Path

import numpy as np
import pytest

from repro.resilience import faults
from repro.serve import (
    DrainingError, Gateway, GatewayClient, ModelRepository, ServeError,
    execute_batch, micro_specs,
)

pytestmark = [pytest.mark.net, pytest.mark.serve]


@pytest.fixture(autouse=True)
def _disarm(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    yield
    monkeypatch.delenv(faults.ENV_VAR, raising=False)


class _StubRepo:
    specs = {"stub": object()}

    def model_key(self, model, fmt, mode):
        return f"{model}|{fmt}|{mode}"


class _GatedService:
    """Completes requests only when the test opens the gate."""

    def __init__(self):
        self.repository = _StubRepo()
        self.gate = threading.Event()
        self.drain_closes = 0
        self.abort_closes = 0

    def submit(self, model, inputs, fmt, mode, deadline_ms=None):
        fut = Future()

        def run():
            if self.gate.wait(30):
                fut.set_result(np.full(2, 7.0, np.float32))

        threading.Thread(target=run, daemon=True).start()
        return fut

    def stats(self):
        return {"gated": True}

    def render_stats(self):
        return "gated stub"

    def close(self, drain=True):
        if drain:
            self.drain_closes += 1
        else:
            self.abort_closes += 1
        self.gate.set()


def test_drain_op_finishes_inflight_and_rejects_new_work():
    stub = _GatedService()
    gw = Gateway(stub, port=0, drain_timeout_s=20.0).start()
    inflight_result = []

    def inflight():
        with GatewayClient(gw.host, gw.port, seed=0) as c:
            inflight_result.append(c.infer("stub", np.zeros(1, np.float32)))

    t = threading.Thread(target=inflight)
    t.start()
    deadline = time.monotonic() + 10
    while gw.stats()["gateway"]["inflight"] < 1:
        assert time.monotonic() < deadline, "request never went in flight"
        time.sleep(0.01)

    with GatewayClient(gw.host, gw.port, seed=1, retries=0) as control:
        reply = control.drain()
        assert reply["draining"] is True
        assert control.health()["state"] == "draining"
        # new request on an existing connection: structured rejection
        with pytest.raises(DrainingError):
            control.infer("stub", np.zeros(1, np.float32))
    # new connection while draining: also a structured rejection
    with GatewayClient(gw.host, gw.port, seed=2, retries=0) as late, \
            pytest.raises((DrainingError, ServeError)):
        late.infer("stub", np.zeros(1, np.float32))

    assert not gw.wait_closed(timeout=0.2), \
        "drain must not finish while a request is in flight"
    stub.gate.set()
    t.join(timeout=10)
    assert inflight_result and inflight_result[0].tobytes() == \
        np.full(2, 7.0, np.float32).tobytes(), \
        "the in-flight request must complete with its real result"
    assert gw.wait_closed(timeout=20), "drain must finish once idle"
    assert stub.drain_closes == 1 and stub.abort_closes == 0, \
        "the service must be closed exactly once, with drain=True"
    assert gw.stats()["gateway"]["draining"] is True


def test_sigterm_drains_the_cli_gateway_and_exits_zero(tmp_path):
    repo_src = str(Path(__file__).resolve().parent.parent / "src")
    env = {**os.environ, "PYTHONPATH": repo_src,
           # hold the first reply open so SIGTERM lands mid-flight
           "REPRO_FAULTS": "net:reply/infer:delay:1"}
    env.pop("REPRO_SANITIZE", None)   # child owns its own lifecycle
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "micro-mlp",
         "--host", "127.0.0.1", "--port", "0", "--calib", "8"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    try:
        line = proc.stdout.readline()
        m = re.search(r"gateway listening on ([\d.]+):(\d+)", line)
        assert m, f"no listening line, got: {line!r}"
        host, port = m.group(1), int(m.group(2))

        x = micro_specs()["micro-mlp"].requests(1, seed=9)[0]
        repo = ModelRepository(micro_specs(), calib_n=8)
        ref = execute_batch(
            repo, repo.model_key("micro-mlp", "MERSIT(8,2)"), [x])[0]
        result = []

        def inflight():
            with GatewayClient(host, port, seed=0, retries=0) as c:
                result.append(c.infer("micro-mlp", x))

        t = threading.Thread(target=inflight)
        t.start()
        time.sleep(0.1)               # let the request reach the gateway
        proc.send_signal(signal.SIGTERM)
        t.join(timeout=60)
        assert not t.is_alive(), "in-flight request hung through SIGTERM"
        assert result, "in-flight request must complete during drain"
        assert result[0].tobytes() == ref.tobytes(), \
            "the drained reply must still be bit-identical to serial"

        # post-drain: new connections are refused or told 'draining'
        try:
            with GatewayClient(host, port, seed=1, retries=0) as late:
                late.infer("micro-mlp", x)
        except (ServeError, ConnectionError, OSError):
            pass
        else:
            pytest.fail("a post-SIGTERM request must not succeed")

        rc = proc.wait(timeout=60)
        out = proc.stdout.read()
        assert rc == 0, f"gateway exited {rc}:\n{out}"
        assert "draining" in out and "exiting" in out
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
