"""End-to-end integration: train -> PTQ -> encode -> gate-level MAC.

One compact test per pipeline stage boundary, exercising the whole stack
the way the experiments do, at micro scale.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro.data import SynthImageNet
from repro.formats import get_format
from repro.hardware import MacUnit, dnn_operand_stream
from repro.nn import Adam, Conv2d, Flatten, GlobalAvgPool2d, Linear, ReLU, Sequential
from repro.quant import PTQConfig, dequantize_model, quantize_model
from repro.quant.ptq import quantized_layers
from repro.zoo.trainer import TrainConfig, evaluate_vision, train_vision


@pytest.fixture(scope="module")
def trained_micro():
    ds = SynthImageNet(num_classes=4, image_size=16, seed=3)
    rng = np.random.default_rng(0)
    model = Sequential(
        Conv2d(3, 8, 3, padding=1, rng=rng), ReLU(),
        Conv2d(8, 8, 3, padding=1, stride=2, rng=rng), ReLU(),
        GlobalAvgPool2d(), Flatten(), Linear(8, 4, rng=rng),
    )
    train_vision(model, ds.train_split(384),
                 TrainConfig(epochs=8, batch_size=32, lr=3e-3))
    return model, ds


class TestTrainToPTQ:
    def test_micro_model_learns(self, trained_micro):
        model, ds = trained_micro
        acc = evaluate_vision(model, ds.test_split(200))
        assert acc > 40.0  # 4 classes, chance is 25

    @pytest.mark.parametrize("fmt", ["Posit(8,1)", "MERSIT(8,2)"])
    def test_wide_formats_track_fp32(self, trained_micro, fmt):
        model, ds = trained_micro
        test = ds.test_split(200)
        fp32 = evaluate_vision(model, test)
        quantize_model(model, PTQConfig(fmt),
                       ds.calibration_split(40).batches(40),
                       forward=lambda m, b: m(Tensor(b[0])))
        q = evaluate_vision(model, test)
        dequantize_model(model)
        assert q > fp32 - 6.0

    def test_quantized_weights_feed_hardware_exactly(self, trained_micro):
        """The PTQ'd model's real tensors drive a bit-exact MAC stream."""
        model, ds = trained_micro
        fmt = get_format("MERSIT(8,2)")
        weights = np.concatenate([l.weight.data.ravel()
                                  for _, l in quantized_layers(model)])
        images = ds.calibration_split(8).images
        w_codes, a_codes = dnn_operand_stream(fmt, weights, images.ravel(), n=96)
        mac = MacUnit(fmt)
        assert mac.accumulate_hw(w_codes, a_codes) == \
            mac.accumulate_reference(w_codes, a_codes)

    def test_mac_dot_product_matches_quantized_network_math(self, trained_micro):
        """A linear layer computed through the gate-level MAC equals the
        fake-quantized numpy computation up to the shared scale factors."""
        model, ds = trained_micro
        fmt = get_format("MERSIT(8,2)")
        lin = model.layers[-1]
        w = lin.weight.data[0].astype(np.float64)   # one output neuron
        x = ds.calibration_split(1).images.ravel()[: len(w)].astype(np.float64)
        w_scale = float(np.abs(w).max())
        x_scale = float(np.abs(x).max())
        w_codes = fmt.encode_array(w / w_scale)
        a_codes = fmt.encode_array(x / x_scale)
        mac = MacUnit(fmt)
        acc = mac.accumulate_hw(w_codes, a_codes)[-1]
        if acc >= 1 << (mac.acc_width - 1):
            acc -= 1 << mac.acc_width
        got = acc * 2.0 ** mac.frac_lsb_exp * w_scale * x_scale
        want = float(np.sum(fmt.decode_array(w_codes) * fmt.decode_array(a_codes))
                     * w_scale * x_scale)
        assert got == pytest.approx(want, rel=1e-10)
