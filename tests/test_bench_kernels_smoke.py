"""Smoke test: benchmarks/bench_kernels.py runs and emits valid JSON."""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH = REPO_ROOT / "benchmarks" / "bench_kernels.py"


def test_bench_kernels_fast_mode(tmp_path):
    out = tmp_path / "BENCH_kernels.json"
    proc = subprocess.run(
        [sys.executable, str(BENCH), "--fast", "--skip-table2",
         "--out", str(out)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(out.read_text())
    assert "host" in payload and payload["host"]["cpu_count"] >= 1
    q = payload["quantize_1m"]
    assert q["format"] == "MERSIT(8,2)"
    assert q["reference_ms"]["min"] > 0 and q["lut_ms"]["min"] > 0
    assert q["speedup_min"] > 0
    assert "speedup x" in proc.stdout
