"""Fault-spec grammar, firing accounting and the ``repro faults`` CLI."""

import numpy as np
import pytest

from repro.resilience import faults


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)


class TestParse:
    def test_scope_action(self):
        (spec,) = faults.parse_spec("calib:nan")
        assert spec == faults.FaultSpec("calib", "*", "nan", None)

    def test_scope_key_action(self):
        (spec,) = faults.parse_spec("cell:ResNet18/INT8:crash")
        assert spec == faults.FaultSpec("cell", "ResNet18/INT8", "crash", None)

    def test_scope_key_action_count(self):
        (spec,) = faults.parse_spec("worker:2:hang:1")
        assert spec == faults.FaultSpec("worker", "2", "hang", 1)

    def test_multiple_clauses_with_spaces(self):
        specs = faults.parse_spec("calib:nan, artifact:table2:truncate:1")
        assert [s.scope for s in specs] == ["calib", "artifact"]

    def test_format_name_commas_do_not_split_clauses(self):
        # cell keys embed format names like Posit(8,1); the comma inside
        # the parens must not be taken as a clause separator
        specs = faults.parse_spec("cell:tinyA/Posit(8,1):crash,calib:nan")
        assert specs[0].key == "tinyA/Posit(8,1)"
        assert specs[1].scope == "calib"

    def test_render_roundtrips(self):
        for text in ("cell:ResNet18/INT8:crash", "worker:2:hang:1",
                     "artifact:table2:truncate:1", "calib:*:nan"):
            (spec,) = faults.parse_spec(text)
            assert faults.parse_spec(spec.render()) == [spec]

    def test_empty_spec(self):
        assert faults.parse_spec("") == []

    def test_unknown_scope_raises(self):
        with pytest.raises(faults.FaultSpecError, match="unknown scope"):
            faults.parse_spec("gpu:crash")

    def test_unknown_action_raises(self):
        with pytest.raises(faults.FaultSpecError, match="unknown action"):
            faults.parse_spec("cell:ResNet18/INT8:explode")

    def test_bare_scope_raises(self):
        with pytest.raises(faults.FaultSpecError, match="at least"):
            faults.parse_spec("cell")

    def test_zero_count_raises(self):
        with pytest.raises(faults.FaultSpecError, match="count"):
            faults.parse_spec("calib:nan:0")

    def test_numeric_key_is_not_a_count(self):
        # worker keys are task indices; '2' here is the key, not a count
        (spec,) = faults.parse_spec("worker:2:crash")
        assert spec.key == "2" and spec.count is None


class TestFiring:
    def test_fire_matches_scope_and_key(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "cell:tinyA/INT8:crash")
        assert faults.fire("cell", "tinyA/INT8") is not None
        assert faults.fire("cell", "tinyA/FP32") is None
        assert faults.fire("calib", "tinyA/INT8") is None

    def test_glob_key(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "cell:tinyA/*:crash")
        assert faults.fire("cell", "tinyA/INT8") is not None
        assert faults.fire("cell", "tinyB/INT8") is None

    def test_count_consumed(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "worker:0:crash:2")
        assert faults.fire("worker", "0") is not None
        assert faults.fire("worker", "0") is not None
        assert faults.fire("worker", "0") is None

    def test_counters_reset_when_spec_changes(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "worker:0:crash:1")
        assert faults.fire("worker", "0") is not None
        monkeypatch.setenv(faults.ENV_VAR, "worker:0:crash:1 ")
        assert faults.fire("worker", "0") is not None

    def test_nothing_armed_is_free(self):
        assert faults.fire("cell", "anything") is None
        assert faults.maybe_fault("cell", "anything") is None

    def test_crash_action_raises(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "cell:k:crash")
        with pytest.raises(faults.FaultInjected, match="cell:k"):
            faults.maybe_fault("cell", "k")

    def test_data_actions_returned(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "calib:nan,artifact:truncate")
        assert faults.maybe_fault("calib", "fc1") == "nan"
        assert faults.maybe_fault("artifact", "table2") == "truncate"

    def test_hang_sleeps(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "worker:0:hang")
        slept = []
        monkeypatch.setattr(faults.time, "sleep", slept.append)
        assert faults.maybe_fault("worker", "0") == "hang"
        assert slept == [faults.HANG_SECONDS]


class TestHelpers:
    def test_poison_nan_copies(self):
        x = np.ones(4)
        y = faults.poison_nan(x)
        assert np.isnan(y[0]) and not np.isnan(x).any()

    def test_describe_lists_points_and_armed(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "calib:nan")
        out = faults.describe()
        for scope, _, _, _ in faults.INJECTION_POINTS:
            assert scope in out
        assert "calib:*:nan" in out

    def test_describe_none_armed(self):
        assert "(none)" in faults.describe()


class TestCLI:
    def test_faults_command(self, capsys):
        from repro.cli import main
        assert main(["faults"]) == 0
        assert "fault-injection points" in capsys.readouterr().out

    def test_faults_command_with_spec(self, capsys):
        from repro.cli import main
        assert main(["faults", "--spec", "worker:2:hang:1"]) == 0
        assert "worker:2:hang:1" in capsys.readouterr().out

    def test_faults_command_rejects_bad_spec(self, capsys):
        from repro.cli import main
        assert main(["faults", "--spec", "bogus:crash"]) == 2
        assert "invalid fault spec" in capsys.readouterr().out
