"""Finite-difference gradient checks for every autograd op."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of scalar-valued fn at x."""
    g = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_hi = fn(x)
        flat[i] = orig - eps
        f_lo = fn(x)
        flat[i] = orig
        gflat[i] = (f_hi - f_lo) / (2 * eps)
    return g


def check(op, *shapes, wrt=0, seed=0, atol=1e-4, positive=False, scale=1.0):
    """Compare autograd and numeric grads of sum(op(*tensors)) wrt one input."""
    rng = np.random.default_rng(seed)
    arrays = []
    for s in shapes:
        a = rng.normal(size=s).astype(np.float64) * scale
        if positive:
            a = np.abs(a) + 0.5
        arrays.append(a)

    def scalar_fn(x):
        args = [Tensor(a) for a in arrays]
        args[wrt] = Tensor(x)
        return float(op(*args).sum().data)

    tensors = [Tensor(a, requires_grad=(i == wrt)) for i, a in enumerate(arrays)]
    out = op(*tensors).sum()
    out.backward()
    analytic = tensors[wrt].grad
    numeric = numeric_grad(scalar_fn, arrays[wrt].copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-3)


class TestArithmetic:
    def test_add(self):
        check(lambda a, b: a + b, (3, 4), (3, 4), wrt=0)

    def test_add_broadcast(self):
        check(lambda a, b: a + b, (3, 4), (4,), wrt=1)

    def test_sub(self):
        check(lambda a, b: a - b, (5,), (5,), wrt=1)

    def test_mul(self):
        check(lambda a, b: a * b, (2, 3), (2, 3), wrt=0)

    def test_mul_broadcast_scalar_shape(self):
        check(lambda a, b: a * b, (2, 3), (1, 3), wrt=1)

    def test_div(self):
        check(lambda a, b: a / b, (4,), (4,), wrt=0, positive=True)
        check(lambda a, b: a / b, (4,), (4,), wrt=1, positive=True)

    def test_pow(self):
        check(lambda a: a ** 3, (6,))

    def test_neg(self):
        check(lambda a: -a, (3, 3))

    def test_matmul(self):
        check(lambda a, b: a @ b, (3, 4), (4, 5), wrt=0)
        check(lambda a, b: a @ b, (3, 4), (4, 5), wrt=1)

    def test_matmul_batched(self):
        check(lambda a, b: a @ b, (2, 3, 4), (2, 4, 5), wrt=0)
        check(lambda a, b: a @ b, (2, 3, 4), (2, 4, 5), wrt=1)

    def test_matmul_broadcast_rhs(self):
        check(lambda a, b: a @ b, (2, 3, 4), (4, 5), wrt=1)


class TestElementwise:
    def test_exp(self):
        check(lambda a: a.exp(), (4, 4))

    def test_log(self):
        check(lambda a: a.log(), (4,), positive=True)

    def test_sqrt(self):
        check(lambda a: a.sqrt(), (4,), positive=True)

    def test_tanh(self):
        check(lambda a: a.tanh(), (5,))

    def test_sigmoid(self):
        check(lambda a: a.sigmoid(), (5,))

    def test_relu(self):
        check(lambda a: a.relu(), (7,), seed=3)

    def test_abs(self):
        check(lambda a: a.abs(), (7,), seed=3)

    def test_clip(self):
        check(lambda a: a.clip(-0.5, 0.5), (9,), seed=1)

    def test_maximum(self):
        check(lambda a, b: a.maximum(b), (6,), (6,), wrt=0, seed=5)


class TestReductions:
    def test_sum_all(self):
        check(lambda a: a.sum(), (3, 4))

    def test_sum_axis(self):
        check(lambda a: a.sum(axis=1), (3, 4))

    def test_sum_keepdims(self):
        check(lambda a: a.sum(axis=0, keepdims=True), (3, 4))

    def test_mean(self):
        check(lambda a: a.mean(axis=1), (3, 4))

    def test_mean_multi_axis(self):
        check(lambda a: a.mean(axis=(1, 2)), (2, 3, 4))

    def test_var(self):
        check(lambda a: a.var(axis=0), (5, 3))

    def test_max(self):
        check(lambda a: a.max(axis=1), (4, 5), seed=2)


class TestShape:
    def test_reshape(self):
        check(lambda a: (a.reshape(6, 2) * 2).sum(axis=0), (3, 4))

    def test_transpose(self):
        check(lambda a: a.transpose(1, 0) @ a, (3, 4))

    def test_getitem_slice(self):
        check(lambda a: a[1:, :2], (4, 4))

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])
        check(lambda a: a[idx], (4, 3))

    def test_pad(self):
        check(lambda a: a.pad(((1, 1), (2, 0))), (3, 3))

    def test_concat(self):
        check(lambda a, b: Tensor.concat([a, b], axis=1), (2, 3), (2, 2), wrt=0)
        check(lambda a, b: Tensor.concat([a, b], axis=1), (2, 3), (2, 2), wrt=1)


class TestNNOps:
    def test_linear(self):
        check(lambda x, w, b: F.linear(x, w, b), (4, 6), (3, 6), (3,), wrt=0)
        check(lambda x, w, b: F.linear(x, w, b), (4, 6), (3, 6), (3,), wrt=1)
        check(lambda x, w, b: F.linear(x, w, b), (4, 6), (3, 6), (3,), wrt=2)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_conv2d(self, stride, padding):
        op = lambda x, w, b: F.conv2d(x, w, b, stride=stride, padding=padding)
        check(op, (2, 3, 6, 6), (4, 3, 3, 3), (4,), wrt=0)
        check(op, (2, 3, 6, 6), (4, 3, 3, 3), (4,), wrt=1)
        check(op, (2, 3, 6, 6), (4, 3, 3, 3), (4,), wrt=2)

    def test_conv2d_grouped(self):
        op = lambda x, w: F.conv2d(x, w, stride=1, padding=1, groups=2)
        check(op, (1, 4, 5, 5), (6, 2, 3, 3), wrt=0)
        check(op, (1, 4, 5, 5), (6, 2, 3, 3), wrt=1)

    def test_conv2d_depthwise(self):
        op = lambda x, w: F.conv2d(x, w, stride=2, padding=1, groups=4)
        check(op, (2, 4, 6, 6), (4, 1, 3, 3), wrt=0)
        check(op, (2, 4, 6, 6), (4, 1, 3, 3), wrt=1)

    def test_conv2d_1x1(self):
        op = lambda x, w: F.conv2d(x, w)
        check(op, (2, 3, 4, 4), (5, 3, 1, 1), wrt=1)

    def test_max_pool(self):
        check(lambda x: F.max_pool2d(x, 2), (2, 3, 6, 6), seed=4)

    def test_max_pool_stride(self):
        check(lambda x: F.max_pool2d(x, 3, stride=2), (1, 2, 7, 7), seed=4)

    def test_avg_pool(self):
        check(lambda x: F.avg_pool2d(x, 2), (2, 3, 6, 6))

    def test_global_avg_pool(self):
        check(lambda x: F.global_avg_pool2d(x), (2, 3, 5, 5))

    @pytest.mark.parametrize("act", [F.relu6, F.hardswish, F.hardsigmoid, F.silu, F.gelu],
                             ids=["relu6", "hardswish", "hardsigmoid", "silu", "gelu"])
    def test_activations(self, act):
        check(lambda x: act(x), (17,), seed=9, scale=2.0)

    def test_softmax(self):
        check(lambda x: F.softmax(x, axis=-1) * np.arange(5.0), (3, 5))

    def test_log_softmax(self):
        check(lambda x: F.log_softmax(x, axis=-1) * np.arange(5.0), (3, 5))

    def test_cross_entropy(self):
        labels = np.array([0, 2, 1])
        check(lambda x: F.cross_entropy(x, labels), (3, 4))

    def test_embedding(self):
        ids = np.array([[0, 1], [1, 3]])
        check(lambda w: F.embedding(w, ids), (5, 3))


class TestConvForwardValues:
    """Conv forward agrees with a direct nested-loop reference."""

    def test_against_reference(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), stride=2, padding=1).data
        # reference
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        ref = np.zeros((1, 3, 3, 3))
        for o in range(3):
            for p in range(3):
                for q in range(3):
                    patch = xp[0, :, 2 * p:2 * p + 3, 2 * q:2 * q + 3]
                    ref[0, o, p, q] = np.sum(patch * w[o])
        np.testing.assert_allclose(out, ref, rtol=1e-6, atol=1e-8)

    def test_depthwise_against_reference(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 3, 4, 4))
        w = rng.normal(size=(3, 1, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), padding=1, groups=3).data
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        ref = np.zeros((1, 3, 4, 4))
        for c in range(3):
            for p in range(4):
                for q in range(4):
                    ref[0, c, p, q] = np.sum(xp[0, c, p:p + 3, q:q + 3] * w[c, 0])
        np.testing.assert_allclose(out, ref, rtol=1e-6, atol=1e-8)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 3, 4, 4))), Tensor(np.zeros((4, 2, 3, 3))))


class TestTapeMechanics:
    def test_grad_accumulates_over_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3 + x * 4  # dy/dx = 7
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        a = x * 2
        b = x * 3
        out = (a * b).sum()  # d/dx 6x^2 = 12x
        out.backward()
        np.testing.assert_allclose(x.grad, [18.0])

    def test_no_grad_blocks_tape(self):
        from repro.autograd import no_grad
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_backward_on_nonscalar_requires_grad_arg(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2
        with pytest.raises(RuntimeError):
            y.backward()
        y.backward(np.ones(3))
        np.testing.assert_allclose(x.grad, [2.0, 2.0, 2.0])

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2).detach() * 3
        assert not y.requires_grad

    def test_backward_without_requires_grad_raises(self):
        x = Tensor(np.ones(1))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_dropout_eval_is_identity(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, rng, training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_dropout_scales_by_keep_prob(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((100, 100)))
        out = F.dropout(x, 0.5, rng, training=True).data
        assert set(np.unique(out)) <= {0.0, 2.0}
        assert abs(out.mean() - 1.0) < 0.1
