"""The serve differential guarantee, fuzzed.

Seeded random request streams — mixed models, mixed formats, bursty
concurrent arrival — are pushed through the batching service, and every
batched result must be **bit-identical** to serial single-sample
inference of the same request, under both PTQ modes (float fakequant and
true-quantized engine) and both kernel backends (``lut`` and
``reference``).

This is what makes dynamic batching safe to use at all: a request's
numbers never depend on which other requests it shared a batch with.
The fakequant side leans on the batch-invariant matmul mode
(:mod:`repro.autograd`); the engine side is invariant by exact integer
arithmetic.  If either regresses, these streams catch it.
"""

import threading

import numpy as np
import pytest

from repro.kernels.dispatch import use_backend
from repro.serve import (
    BatchPolicy, InferenceService, ModelRepository, micro_specs,
)

pytestmark = pytest.mark.serve

MODELS = ["micro-mlp", "micro-attn", "micro-cnn"]
FORMATS = ["MERSIT(8,2)", "INT8"]


@pytest.fixture()
def service(tmp_path):
    repo = ModelRepository(micro_specs(), calib_n=8,
                           cache_dir=tmp_path / "cache")
    svc = InferenceService(
        repo, BatchPolicy(max_batch=6, max_wait_ms=4.0, queue_depth=256,
                          workers=3))
    yield svc
    svc.close()


def fuzz_stream(rng, n, models=MODELS, formats=FORMATS):
    """n random (model, format, inputs) requests from seeded pools."""
    pools = {m: micro_specs()[m].requests(8, seed=17) for m in models}
    stream = []
    for _ in range(n):
        m = models[rng.integers(len(models))]
        f = formats[rng.integers(len(formats))]
        x = pools[m][rng.integers(len(pools[m]))]
        stream.append((m, f, x))
    return stream


def run_stream(service, stream, mode, burst=8):
    """Submit the stream in concurrent bursts; return results in order."""
    results = [None] * len(stream)

    def submit_one(i):
        m, f, x = stream[i]
        results[i] = service.submit(m, x, f, mode).result(60)

    for start in range(0, len(stream), burst):
        threads = [threading.Thread(target=submit_one, args=(i,))
                   for i in range(start, min(start + burst, len(stream)))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    return results


@pytest.mark.parametrize("backend", ["lut", "reference"])
@pytest.mark.parametrize("mode", ["fakequant", "engine"])
def test_fuzzed_streams_bit_identical_to_serial(service, mode, backend):
    rng = np.random.default_rng(101 if mode == "fakequant" else 202)
    with use_backend(backend):
        stream = fuzz_stream(rng, 24)
        reference = [service.infer_serial(m, x, f, mode)
                     for m, f, x in stream]
        batched = run_stream(service, stream, mode)
    for i, (ref, got) in enumerate(zip(reference, batched)):
        np.testing.assert_array_equal(
            ref, got, err_msg=f"request {i} ({stream[i][0]}|{stream[i][1]}|"
            f"{mode}|{backend}) diverged from serial inference")


def test_coalesced_batches_match_per_request_serial(service):
    """Same request repeated in one burst: all batched copies equal serial."""
    spec = micro_specs()["micro-cnn"]
    x = spec.requests(1, seed=3)[0]
    ref = service.infer_serial("micro-cnn", x)
    futs = [service.submit("micro-cnn", x) for _ in range(12)]
    for fut in futs:
        np.testing.assert_array_equal(ref, fut.result(60))
    # and the scheduler actually batched (not 12 serial singles)
    hist = service.metrics.snapshot()["batch_size_histogram"]
    assert any(int(k) > 1 for k in hist)


def test_stream_with_mixed_modes_is_stable(service):
    """fakequant and engine requests for one model interleaved in flight."""
    rng = np.random.default_rng(7)
    stream = fuzz_stream(rng, 12, models=["micro-mlp"], formats=["MERSIT(8,2)"])
    refs = {mode: [service.infer_serial(m, x, f, mode) for m, f, x in stream]
            for mode in ("fakequant", "engine")}
    futs = []
    for i, (m, f, x) in enumerate(stream):
        futs.append((i, "fakequant", service.submit(m, x, f, "fakequant")))
        futs.append((i, "engine", service.submit(m, x, f, "engine")))
    for i, mode, fut in futs:
        np.testing.assert_array_equal(refs[mode][i], fut.result(60))


def test_results_are_deterministic_across_replays(service):
    """The same seeded stream replayed gives byte-identical outputs."""
    rng1 = np.random.default_rng(55)
    rng2 = np.random.default_rng(55)
    out1 = run_stream(service, fuzz_stream(rng1, 10), "fakequant")
    out2 = run_stream(service, fuzz_stream(rng2, 10), "fakequant")
    for a, b in zip(out1, out2):
        np.testing.assert_array_equal(a, b)


# ----------------------------------------------------------------------
# mixed-precision per-layer format specs through the same harness
# ----------------------------------------------------------------------

#: one genuinely mixed assignment per micro model (layer names are the
#: quantize_model-assigned ones; see repro.serve.repository.micro_specs)
MIXED_SPECS = {
    "micro-mlp": "mixed(MERSIT(8,2);layer2=FP(8,2))",
    "micro-attn": "mixed(FP(8,4);block.fc1=MERSIT(8,2);head=Posit(8,1))",
    "micro-cnn": "mixed(MERSIT(8,2);layer7=FP(8,3))",
}


def mixed_fuzz_stream(rng, n):
    """Requests whose format field is a full per-layer mixed spec."""
    pools = {m: micro_specs()[m].requests(8, seed=17) for m in MODELS}
    stream = []
    for _ in range(n):
        m = MODELS[rng.integers(len(MODELS))]
        # alternate between the model's mixed spec and a uniform format,
        # so uniform and mixed planes coexist in the same scheduler
        f = MIXED_SPECS[m] if rng.integers(2) else FORMATS[0]
        x = pools[m][rng.integers(len(pools[m]))]
        stream.append((m, f, x))
    return stream


@pytest.mark.parametrize("backend", ["lut", "reference"])
@pytest.mark.parametrize("mode", ["fakequant", "engine"])
def test_mixed_spec_streams_bit_identical_to_serial(service, mode, backend):
    """Per-layer-format requests keep the batching guarantee."""
    rng = np.random.default_rng(303 if mode == "fakequant" else 404)
    with use_backend(backend):
        stream = mixed_fuzz_stream(rng, 18)
        reference = [service.infer_serial(m, x, f, mode)
                     for m, f, x in stream]
        batched = run_stream(service, stream, mode)
    for i, (ref, got) in enumerate(zip(reference, batched)):
        np.testing.assert_array_equal(
            ref, got, err_msg=f"request {i} ({stream[i][0]}|{stream[i][1]}|"
            f"{mode}|{backend}) diverged from serial inference")


def test_mixed_spec_differs_from_uniform_but_spelling_does_not(service):
    """A mixed spec changes the numbers; a respelled spec does not."""
    spec = micro_specs()["micro-mlp"]
    x = spec.requests(1, seed=9)[0]
    uniform = service.infer_serial("micro-mlp", x, "MERSIT(8,2)")
    mixed = service.infer_serial("micro-mlp", x, MIXED_SPECS["micro-mlp"])
    assert uniform.tobytes() != mixed.tobytes()
    # a uniform map spelled as a mixed(...) spec is the uniform model
    respelled = service.infer_serial(
        "micro-mlp", x, "mixed(MERSIT(8,2);layer2=MERSIT(8,2))")
    np.testing.assert_array_equal(uniform, respelled)
