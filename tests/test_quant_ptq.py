"""Model-level PTQ driver: hooks, calibration, quantized inference."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Conv2d, Flatten, GlobalAvgPool2d, Linear, ReLU, Sequential
from repro.quant import PTQConfig, dequantize_model, quantize_model, quantized_layers
from repro.formats import get_format


def tiny_cnn(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(3, 4, 3, padding=1, rng=rng),
        ReLU(),
        Conv2d(4, 4, 3, padding=1, rng=rng),
        GlobalAvgPool2d(),
        Flatten(),
        Linear(4, 5, rng=rng),
    )


def batches(n=2, bs=4, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(bs, 3, 8, 8)).astype(np.float32) for _ in range(n)]


class TestQuantizeModel:
    def test_all_layers_hooked(self):
        model = tiny_cnn()
        quantize_model(model, PTQConfig("INT8"), batches(),
                       forward=lambda m, b: m(Tensor(b)))
        layers = [l for _, l in quantized_layers(model)]
        assert len(layers) == 3
        assert all(l.weight_quant is not None for l in layers)
        assert all(l.input_quant.calibrated for l in layers)
        assert all(not l.observing for l in layers)

    def test_weight_scales_per_channel(self):
        model = tiny_cnn()
        quantize_model(model, PTQConfig("INT8"), batches(),
                       forward=lambda m, b: m(Tensor(b)))
        conv = model.layers[0]
        assert conv.weight_quant.scale.shape == (4,)  # out channels
        assert conv.input_quant.scale.ndim == 0       # per tensor

    def test_per_tensor_weights_option(self):
        model = tiny_cnn()
        cfg = PTQConfig("INT8", per_channel_weights=False)
        quantize_model(model, cfg, batches(), forward=lambda m, b: m(Tensor(b)))
        assert model.layers[0].weight_quant.scale.ndim == 0

    def test_output_changes_under_quantization(self):
        model = tiny_cnn()
        x = Tensor(batches(1)[0])
        ref = model(x).data.copy()
        quantize_model(model, PTQConfig("FP(8,2)"), batches(),
                       forward=lambda m, b: m(Tensor(b)))
        quant = model(x).data
        assert not np.allclose(ref, quant)

    def test_dequantize_restores_fp32(self):
        model = tiny_cnn()
        x = Tensor(batches(1)[0])
        ref = model(x).data.copy()
        quantize_model(model, PTQConfig("INT8"), batches(),
                       forward=lambda m, b: m(Tensor(b)))
        dequantize_model(model)
        np.testing.assert_allclose(model(x).data, ref)

    def test_weights_not_mutated(self):
        model = tiny_cnn()
        w0 = model.layers[0].weight.data.copy()
        quantize_model(model, PTQConfig("MERSIT(8,2)"), batches(),
                       forward=lambda m, b: m(Tensor(b)))
        model(Tensor(batches(1)[0]))
        np.testing.assert_array_equal(model.layers[0].weight.data, w0)

    def test_effective_weight_is_representable(self):
        model = tiny_cnn()
        cfg = PTQConfig("MERSIT(8,2)")
        quantize_model(model, cfg, batches(), forward=lambda m, b: m(Tensor(b)))
        conv = model.layers[0]
        w_eff = conv._effective_weight().data
        # rescaled back: w_eff * gain/scale must hit codebook values exactly
        fmt = get_format("MERSIT(8,2)")
        g = fmt.quantization_gain / conv.weight_quant.scale[:, None, None, None]
        scaled = w_eff * g
        np.testing.assert_allclose(fmt.quantize(scaled), scaled, atol=1e-12)

    def test_skip_predicate(self):
        model = tiny_cnn()
        cfg = PTQConfig("INT8", skip=lambda name, m: isinstance(m, Linear))
        quantize_model(model, cfg, batches(), forward=lambda m, b: m(Tensor(b)))
        assert model.layers[0].weight_quant is not None
        assert model.layers[5].weight_quant is None

    def test_empty_calibration_raises(self):
        model = tiny_cnn()
        with pytest.raises(ValueError, match="empty"):
            quantize_model(model, PTQConfig("INT8"), [],
                           forward=lambda m, b: m(Tensor(b)))

    def test_no_quantizable_layers_raises(self):
        model = Sequential(ReLU())
        with pytest.raises(ValueError, match="quantizable"):
            quantize_model(model, PTQConfig("INT8"), batches())

    def test_format_objects_accepted(self):
        cfg = PTQConfig(get_format("INT8"), activation_format=get_format("FP(8,4)"))
        assert cfg.wfmt.name == "INT8"
        assert cfg.afmt.name == "FP(8,4)"

    def test_activation_format_defaults_to_weight_format(self):
        cfg = PTQConfig("Posit(8,1)")
        assert cfg.afmt.name == "Posit(8,1)"

    def test_gain_override_plumbed(self):
        model = tiny_cnn()
        cfg = PTQConfig("MERSIT(8,2)", gain_override=4.0)
        quantize_model(model, cfg, batches(), forward=lambda m, b: m(Tensor(b)))
        assert model.layers[0].weight_quant.gain == 4.0


class TestQuantizedAccuracySanity:
    """High-precision formats must track FP32 on a tiny trained model."""

    def _train_tiny(self):
        from repro.nn import Adam
        from repro.autograd import functional as F
        rng = np.random.default_rng(42)
        x = rng.normal(size=(256, 8)).astype(np.float32)
        w_true = rng.normal(size=(8,))
        y = (x @ w_true > 0).astype(np.int64)
        model = Sequential(Linear(8, 16, rng=rng), ReLU(), Linear(16, 2, rng=rng))
        opt = Adam(model.parameters(), lr=0.01)
        for _ in range(60):
            loss = F.cross_entropy(model(Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        model.eval()
        return model, x, y

    def _accuracy(self, model, x, y):
        pred = np.argmax(model(Tensor(x)).data, axis=-1)
        return float(np.mean(pred == y))

    @pytest.mark.parametrize("fmt", ["INT8", "FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"])
    def test_8bit_close_to_fp32(self, fmt):
        model, x, y = self._train_tiny()
        fp32 = self._accuracy(model, x, y)
        assert fp32 > 0.9
        quantize_model(model, PTQConfig(fmt), [x[:64]],
                       forward=lambda m, b: m(Tensor(b)))
        q = self._accuracy(model, x, y)
        assert q > fp32 - 0.05


class TestEngineMode:
    def test_engine_attached_and_cleared(self):
        model = tiny_cnn()
        quantize_model(model, PTQConfig("MERSIT(8,2)", mode="engine"),
                       batches(), forward=lambda m, b: m(Tensor(b)))
        layers = [l for _, l in quantized_layers(model)]
        assert all(l.engine_exec is not None for l in layers)
        dequantize_model(model)
        assert all(l.engine_exec is None for l in layers)

    def test_engine_close_to_fakequant(self):
        x = Tensor(batches(1)[0])
        model = tiny_cnn()
        quantize_model(model, PTQConfig("MERSIT(8,2)"), batches(),
                       forward=lambda m, b: m(Tensor(b)))
        fake = model(x).data.copy()
        dequantize_model(model)
        quantize_model(model, PTQConfig("MERSIT(8,2)", mode="engine"),
                       batches(), forward=lambda m, b: m(Tensor(b)))
        engine = model(x).data
        # the engine adds one output rounding per MAC; everything else is
        # identical, so outputs differ by at most a few output ULPs
        assert not np.array_equal(fake, engine)
        assert np.allclose(fake, engine, rtol=0.2, atol=0.2)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown PTQ mode"):
            PTQConfig("INT8", mode="typo")
